package svm

import (
	"errors"
	"fmt"
	"math"
)

// TrainParams configures ε-SVR training; fields mirror LIBSVM's command-line
// options.
type TrainParams struct {
	// Kernel selects and parameterizes the kernel (-t, -g, -r, -d).
	Kernel Kernel
	// C is the regularization/box constraint (-c).
	C float64
	// Epsilon is the ε-tube half-width of the loss (-p).
	Epsilon float64
	// Tol is the KKT stopping tolerance (-e). Zero selects LIBSVM's 1e-3.
	Tol float64
	// MaxIter bounds SMO iterations. Zero selects a generous default.
	MaxIter int
	// Selection picks the working-set rule; the zero value is
	// MaxViolatingPair. SecondOrder matches LIBSVM's WSS2 and typically
	// converges in fewer iterations.
	Selection SelectionRule
}

// DefaultTrainParams mirrors the paper's setup: RBF kernel, with C/γ meant
// to be replaced by a grid search (internal/mlgrid is the easygrid stand-in).
func DefaultTrainParams(dim int) TrainParams {
	gamma := 1.0
	if dim > 0 {
		gamma = 1.0 / float64(dim) // LIBSVM's default: 1/num_features
	}
	return TrainParams{
		Kernel:  Kernel{Type: RBF, Gamma: gamma},
		C:       1,
		Epsilon: 0.1,
	}
}

// Validate checks the training configuration.
func (p TrainParams) Validate() error {
	if err := p.Kernel.Validate(); err != nil {
		return err
	}
	if p.C <= 0 {
		return fmt.Errorf("svm: C must be > 0, got %v", p.C)
	}
	if p.Epsilon < 0 {
		return fmt.Errorf("svm: epsilon must be >= 0, got %v", p.Epsilon)
	}
	if p.Tol < 0 {
		return fmt.Errorf("svm: tol must be >= 0, got %v", p.Tol)
	}
	if p.MaxIter < 0 {
		return fmt.Errorf("svm: maxIter must be >= 0, got %d", p.MaxIter)
	}
	if p.Selection != MaxViolatingPair && p.Selection != SecondOrder {
		return fmt.Errorf("svm: unknown selection rule %d", int(p.Selection))
	}
	return nil
}

// Model is a trained ε-SVR: f(x) = Σ_i Coef_i·K(SV_i, x) − Rho.
type Model struct {
	Kernel Kernel
	// SV holds the support vectors (samples with non-zero coefficient).
	SV [][]float64
	// Coef holds β_i for each support vector.
	Coef []float64
	// Rho is the offset; predictions subtract it, as in LIBSVM.
	Rho float64
	// Dim is the feature dimensionality.
	Dim int
	// Iters records the SMO iterations used in training (informational).
	Iters int

	batchCache // flattened-SV matrix for PredictBatch, built lazily
}

// Train fits an ε-SVR on features x and targets z.
func Train(x [][]float64, z []float64, params TrainParams) (*Model, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(x) == 0 {
		return nil, errors.New("svm: no training data")
	}
	if len(x) != len(z) {
		return nil, fmt.Errorf("svm: %d feature rows vs %d targets", len(x), len(z))
	}
	dim := len(x[0])
	if dim == 0 {
		return nil, errors.New("svm: zero-dimensional features")
	}
	for i, row := range x {
		if len(row) != dim {
			return nil, fmt.Errorf("svm: row %d has %d features, want %d", i, len(row), dim)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("svm: row %d feature %d is %v", i, j, v)
			}
		}
	}
	for i, v := range z {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("svm: target %d is %v", i, v)
		}
	}

	tol := params.Tol
	if tol == 0 {
		tol = 1e-3
	}
	maxIter := params.MaxIter
	if maxIter == 0 {
		maxIter = 10_000_000
	}

	s := newSolver(x, z, params.Kernel, params.C, params.Epsilon, tol, maxIter, params.Selection)
	beta, rho, iters, err := s.solve()
	if err != nil {
		return nil, err
	}

	m := &Model{Kernel: params.Kernel, Rho: rho, Dim: dim, Iters: iters}
	for i, b := range beta {
		if b != 0 {
			sv := make([]float64, dim)
			copy(sv, x[i])
			m.SV = append(m.SV, sv)
			m.Coef = append(m.Coef, b)
		}
	}
	return m, nil
}

// Predict evaluates the model on one feature vector.
func (m *Model) Predict(x []float64) (float64, error) {
	if len(x) != m.Dim {
		return 0, fmt.Errorf("svm: predict with %d features, model wants %d", len(x), m.Dim)
	}
	var sum float64
	for i, sv := range m.SV {
		sum += m.Coef[i] * m.Kernel.Eval(sv, x)
	}
	return sum - m.Rho, nil
}

// PredictAll evaluates the model on a matrix of feature vectors.
func (m *Model) PredictAll(xs [][]float64) ([]float64, error) {
	out := make([]float64, len(xs))
	for i, x := range xs {
		v, err := m.Predict(x)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// NumSV returns the support vector count.
func (m *Model) NumSV() int { return len(m.SV) }
