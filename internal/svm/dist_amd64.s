// AVX2+FMA kernels for batch RBF evaluation. Only used when runtime CPUID
// detection (dist_amd64.go) confirms AVX2, FMA and OS ymm-state support;
// sqDistsGeneric is the portable fallback (forced by the noasm build tag).

//go:build amd64 && !noasm

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func sqdist4AVX(flat, x *float64, dim int, out *float64)
//
// flat points at four consecutive row-major support-vector rows of length
// dim; out receives the four squared distances to x, summed over the first
// dim&^3 elements only (the caller adds the scalar tail). Four independent
// ymm accumulators keep the FMA pipeline full.
TEXT ·sqdist4AVX(SB), NOSPLIT, $0-32
	MOVQ flat+0(FP), SI
	MOVQ x+8(FP), DX
	MOVQ dim+16(FP), CX
	MOVQ out+24(FP), DI

	MOVQ CX, AX
	SHLQ $3, AX          // row stride in bytes
	MOVQ SI, R8          // row 0
	LEAQ (SI)(AX*1), R9  // row 1
	LEAQ (R9)(AX*1), R10 // row 2
	LEAQ (R10)(AX*1), R11 // row 3

	MOVQ CX, BX
	ANDQ $-4, BX         // vectorizable element count

	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4

	XORQ AX, AX          // j = 0
loop:
	CMPQ AX, BX
	JGE  done
	VMOVUPD (DX)(AX*8), Y0
	VMOVUPD (R8)(AX*8), Y5
	VSUBPD  Y0, Y5, Y5
	VFMADD231PD Y5, Y5, Y1
	VMOVUPD (R9)(AX*8), Y6
	VSUBPD  Y0, Y6, Y6
	VFMADD231PD Y6, Y6, Y2
	VMOVUPD (R10)(AX*8), Y7
	VSUBPD  Y0, Y7, Y7
	VFMADD231PD Y7, Y7, Y3
	VMOVUPD (R11)(AX*8), Y8
	VSUBPD  Y0, Y8, Y8
	VFMADD231PD Y8, Y8, Y4
	ADDQ $4, AX
	JMP  loop
done:
	VEXTRACTF128 $1, Y1, X5
	VADDPD  X5, X1, X1
	VHADDPD X1, X1, X1
	VMOVSD  X1, (DI)

	VEXTRACTF128 $1, Y2, X5
	VADDPD  X5, X2, X2
	VHADDPD X2, X2, X2
	VMOVSD  X2, 8(DI)

	VEXTRACTF128 $1, Y3, X5
	VADDPD  X5, X3, X3
	VHADDPD X3, X3, X3
	VMOVSD  X3, 16(DI)

	VEXTRACTF128 $1, Y4, X5
	VADDPD  X5, X4, X4
	VHADDPD X4, X4, X4
	VMOVSD  X4, 24(DI)

	VZEROUPPER
	RET
