// Package svm implements ε-Support-Vector-Regression compatible with the
// LIBSVM 3.x formulation the paper trains on (Wu et al. use LIBSVM 3.17 with
// the RBF kernel). Training solves the dual problem with Sequential Minimal
// Optimization using maximal-violating-pair working-set selection, the same
// strategy as LIBSVM's Solver; prediction, the ε-tube, the C box constraint
// and the ρ offset all follow the LIBSVM conventions so hyper-parameters and
// model files transfer mentally one-to-one.
//
// The package is self-contained (stdlib only), deterministic, and validated
// in its tests against analytically solvable regression problems and the
// KKT optimality conditions.
package svm

import (
	"fmt"
	"math"
)

// KernelType selects the kernel function.
type KernelType int

// Supported kernels, matching LIBSVM's -t option order.
const (
	Linear KernelType = iota + 1
	Polynomial
	RBF
	Sigmoid
)

// String implements fmt.Stringer using LIBSVM's model-file names.
func (k KernelType) String() string {
	switch k {
	case Linear:
		return "linear"
	case Polynomial:
		return "polynomial"
	case RBF:
		return "rbf"
	case Sigmoid:
		return "sigmoid"
	default:
		return fmt.Sprintf("KernelType(%d)", int(k))
	}
}

// ParseKernelType converts a LIBSVM kernel name back to its KernelType.
func ParseKernelType(s string) (KernelType, error) {
	switch s {
	case "linear":
		return Linear, nil
	case "polynomial":
		return Polynomial, nil
	case "rbf":
		return RBF, nil
	case "sigmoid":
		return Sigmoid, nil
	default:
		return 0, fmt.Errorf("svm: unknown kernel %q", s)
	}
}

// Kernel evaluates k(x, z) for a kernel family with fixed hyper-parameters.
type Kernel struct {
	Type   KernelType
	Gamma  float64 // RBF / polynomial / sigmoid scale
	Coef0  float64 // polynomial / sigmoid offset
	Degree int     // polynomial degree
}

// Validate checks hyper-parameter sanity for the chosen kernel family.
func (k Kernel) Validate() error {
	switch k.Type {
	case Linear:
		return nil
	case RBF:
		if k.Gamma <= 0 {
			return fmt.Errorf("svm: rbf gamma must be > 0, got %v", k.Gamma)
		}
		return nil
	case Polynomial:
		if k.Degree < 1 {
			return fmt.Errorf("svm: polynomial degree must be >= 1, got %d", k.Degree)
		}
		if k.Gamma <= 0 {
			return fmt.Errorf("svm: polynomial gamma must be > 0, got %v", k.Gamma)
		}
		return nil
	case Sigmoid:
		if k.Gamma <= 0 {
			return fmt.Errorf("svm: sigmoid gamma must be > 0, got %v", k.Gamma)
		}
		return nil
	default:
		return fmt.Errorf("svm: unknown kernel type %d", int(k.Type))
	}
}

// Eval computes k(x, z). Vectors must have equal length; this is enforced by
// the training and prediction entry points rather than re-checked per call.
func (k Kernel) Eval(x, z []float64) float64 {
	switch k.Type {
	case Linear:
		return dot(x, z)
	case Polynomial:
		return math.Pow(k.Gamma*dot(x, z)+k.Coef0, float64(k.Degree))
	case RBF:
		return math.Exp(-k.Gamma * sqDist(x, z))
	case Sigmoid:
		return math.Tanh(k.Gamma*dot(x, z) + k.Coef0)
	default:
		panic(fmt.Sprintf("svm: Eval on invalid kernel %d", int(k.Type)))
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
