package svm

import (
	"errors"
	"math"
)

// solver runs SMO on the ε-SVR dual in LIBSVM's doubled formulation:
//
//	min ½ aᵀQ̄a + pᵀa   s.t.  yᵀa = 0,  0 ≤ a_t ≤ C
//
// with 2l variables: a_t for t < l are the "up" multipliers (y_t = +1,
// p_t = ε − z_t) and a_t for t ≥ l the "down" multipliers (y_t = −1,
// p_t = ε + z_t), where z is the regression target. Q̄_ts = y_t·y_s·K(t%l, s%l).
// The final coefficient of sample i is β_i = a_i − a_{i+l}.
type solver struct {
	l     int // number of training samples
	n     int // 2l variables
	c     float64
	eps   float64 // ε-tube half width
	tol   float64 // KKT violation tolerance
	maxIt int
	rule  SelectionRule

	x [][]float64
	z []float64
	k Kernel

	alpha []float64
	grad  []float64 // G_t = (Q̄a)_t + p_t

	cache *rowCache
	diag  []float64 // Q̄_tt (always +K(i,i))
}

// tau is LIBSVM's lower bound for the second-order coefficient.
const tau = 1e-12

// SelectionRule chooses the SMO working-set selection strategy.
type SelectionRule int

// Selection rules.
const (
	// MaxViolatingPair is the classic first-order rule (Keerthi et al.):
	// the pair with the largest KKT violation.
	MaxViolatingPair SelectionRule = iota
	// SecondOrder is LIBSVM's WSS2 (Fan, Chen & Lin 2005): i maximizes the
	// violation, j maximizes the guaranteed objective decrease. Usually
	// converges in substantially fewer iterations.
	SecondOrder
)

func newSolver(x [][]float64, z []float64, k Kernel, c, eps, tol float64, maxIt int, rule SelectionRule) *solver {
	l := len(x)
	s := &solver{
		l: l, n: 2 * l,
		c: c, eps: eps, tol: tol, maxIt: maxIt,
		rule: rule,
		x:    x, z: z, k: k,
		alpha: make([]float64, 2*l),
		grad:  make([]float64, 2*l),
		cache: newRowCache(l, k, x),
		diag:  make([]float64, 2*l),
	}
	for t := 0; t < s.n; t++ {
		s.grad[t] = s.p(t) // alpha starts at zero, so G = p
		i := t % l
		s.diag[t] = s.cache.row(i)[i]
	}
	return s
}

// y returns the constraint sign of variable t.
func (s *solver) y(t int) float64 {
	if t < s.l {
		return 1
	}
	return -1
}

// p returns the linear term of variable t.
func (s *solver) p(t int) float64 {
	if t < s.l {
		return s.eps - s.z[t]
	}
	return s.eps + s.z[t-s.l]
}

// q returns Q̄_ts without materializing the doubled matrix.
func (s *solver) q(t, u int) float64 {
	v := s.cache.row(t % s.l)[u%s.l]
	return s.y(t) * s.y(u) * v
}

// selectWorkingSet returns the next pair (i, j) to optimize, or ok=false
// when the KKT conditions hold within tol.
func (s *solver) selectWorkingSet() (i, j int, ok bool) {
	// i: argmax_{t in I_up} -y_t G_t ; j per the configured rule.
	gmax := math.Inf(-1)
	gmin := math.Inf(1)
	i, j = -1, -1
	for t := 0; t < s.n; t++ {
		yg := -s.y(t) * s.grad[t]
		if s.inUp(t) && yg > gmax {
			gmax = yg
			i = t
		}
		if s.inLow(t) && yg < gmin {
			gmin = yg
			j = t
		}
	}
	if i < 0 || j < 0 || gmax-gmin < s.tol {
		return 0, 0, false
	}
	if s.rule == MaxViolatingPair {
		return i, j, true
	}

	// WSS2: keep i, choose j in I_low maximizing the second-order gain
	//   b² / a,  b = gmax + y_j G_j > 0,  a = Q_ii + Q_jj − 2 y_i y_j Q_ij.
	ri := s.cache.row(i % s.l)
	qi := s.diag[i]
	yi := s.y(i)
	bestGain := math.Inf(-1)
	bestJ := -1
	for t := 0; t < s.n; t++ {
		if !s.inLow(t) {
			continue
		}
		b := gmax + s.y(t)*s.grad[t]
		if b <= 0 {
			continue
		}
		a := qi + s.diag[t] - 2*yi*s.y(t)*ri[t%s.l]
		if a <= 0 {
			a = tau
		}
		if gain := b * b / a; gain > bestGain {
			bestGain = gain
			bestJ = t
		}
	}
	if bestJ < 0 {
		// No admissible second-order choice; fall back to the first-order j.
		return i, j, true
	}
	return i, bestJ, true
}

func (s *solver) inUp(t int) bool {
	if s.y(t) > 0 {
		return s.alpha[t] < s.c
	}
	return s.alpha[t] > 0
}

func (s *solver) inLow(t int) bool {
	if s.y(t) > 0 {
		return s.alpha[t] > 0
	}
	return s.alpha[t] < s.c
}

// solve runs SMO to convergence. It returns the per-sample coefficients
// β_i = a_i − a_{i+l}, the offset rho, and the iteration count.
func (s *solver) solve() (beta []float64, rho float64, iters int, err error) {
	for iters = 0; iters < s.maxIt; iters++ {
		i, j, ok := s.selectWorkingSet()
		if !ok {
			return s.finish(iters)
		}
		s.update(i, j)
	}
	return nil, 0, iters, errors.New("svm: SMO iteration limit reached without convergence")
}

// update optimizes the pair (i, j) analytically and refreshes the gradient.
func (s *solver) update(i, j int) {
	qi := s.q(i, i)
	qj := s.q(j, j)
	qij := s.q(i, j)
	oldAi, oldAj := s.alpha[i], s.alpha[j]

	if s.y(i) != s.y(j) {
		quad := qi + qj + 2*qij
		if quad <= 0 {
			quad = tau
		}
		delta := (-s.grad[i] - s.grad[j]) / quad
		diff := s.alpha[i] - s.alpha[j]
		s.alpha[i] += delta
		s.alpha[j] += delta
		if diff > 0 {
			if s.alpha[j] < 0 {
				s.alpha[j] = 0
				s.alpha[i] = diff
			}
		} else {
			if s.alpha[i] < 0 {
				s.alpha[i] = 0
				s.alpha[j] = -diff
			}
		}
		if diff > 0 {
			if s.alpha[i] > s.c {
				s.alpha[i] = s.c
				s.alpha[j] = s.c - diff
			}
		} else {
			if s.alpha[j] > s.c {
				s.alpha[j] = s.c
				s.alpha[i] = s.c + diff
			}
		}
	} else {
		quad := qi + qj - 2*qij
		if quad <= 0 {
			quad = tau
		}
		delta := (s.grad[i] - s.grad[j]) / quad
		sum := s.alpha[i] + s.alpha[j]
		s.alpha[i] -= delta
		s.alpha[j] += delta
		if sum > s.c {
			if s.alpha[i] > s.c {
				s.alpha[i] = s.c
				s.alpha[j] = sum - s.c
			}
		} else {
			if s.alpha[j] < 0 {
				s.alpha[j] = 0
				s.alpha[i] = sum
			}
		}
		if sum > s.c {
			if s.alpha[j] > s.c {
				s.alpha[j] = s.c
				s.alpha[i] = sum - s.c
			}
		} else {
			if s.alpha[i] < 0 {
				s.alpha[i] = 0
				s.alpha[j] = sum
			}
		}
	}

	dAi := s.alpha[i] - oldAi
	dAj := s.alpha[j] - oldAj
	if dAi == 0 && dAj == 0 {
		return
	}
	// G_t += Q̄_ti ΔA_i + Q̄_tj ΔA_j, computed from the two cached base rows.
	ri := s.cache.row(i % s.l)
	rj := s.cache.row(j % s.l)
	yi, yj := s.y(i), s.y(j)
	for t := 0; t < s.n; t++ {
		yt := s.y(t)
		s.grad[t] += yt * yi * ri[t%s.l] * dAi
		s.grad[t] += yt * yj * rj[t%s.l] * dAj
	}
}

// finish computes β and rho from the converged state.
func (s *solver) finish(iters int) (beta []float64, rho float64, its int, err error) {
	beta = make([]float64, s.l)
	for i := 0; i < s.l; i++ {
		beta[i] = s.alpha[i] - s.alpha[i+s.l]
	}

	// LIBSVM calculate_rho on the doubled problem.
	ub := math.Inf(1)
	lb := math.Inf(-1)
	var sumFree float64
	nFree := 0
	for t := 0; t < s.n; t++ {
		yg := s.y(t) * s.grad[t]
		switch {
		case s.alpha[t] >= s.c:
			if s.y(t) < 0 {
				ub = math.Min(ub, yg)
			} else {
				lb = math.Max(lb, yg)
			}
		case s.alpha[t] <= 0:
			if s.y(t) > 0 {
				ub = math.Min(ub, yg)
			} else {
				lb = math.Max(lb, yg)
			}
		default:
			nFree++
			sumFree += yg
		}
	}
	if nFree > 0 {
		rho = sumFree / float64(nFree)
	} else {
		rho = (ub + lb) / 2
	}
	return beta, rho, iters, nil
}

// rowCache caches kernel matrix rows K(i, ·) over the l base samples with a
// simple FIFO eviction policy; for the dataset sizes in this repository most
// runs fit entirely in cache.
type rowCache struct {
	l       int
	k       Kernel
	x       [][]float64
	rows    map[int][]float64
	order   []int
	maxRows int
}

func newRowCache(l int, k Kernel, x [][]float64) *rowCache {
	maxRows := l
	const maxCachedValues = 16 << 20 // ~128 MB of float64s
	if l > 0 && l*l > maxCachedValues {
		maxRows = maxCachedValues / l
		if maxRows < 2 {
			maxRows = 2
		}
	}
	return &rowCache{
		l: l, k: k, x: x,
		rows:    make(map[int][]float64, maxRows),
		maxRows: maxRows,
	}
}

func (c *rowCache) row(i int) []float64 {
	if r, ok := c.rows[i]; ok {
		return r
	}
	r := make([]float64, c.l)
	xi := c.x[i]
	for j := 0; j < c.l; j++ {
		r[j] = c.k.Eval(xi, c.x[j])
	}
	if len(c.order) >= c.maxRows {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.rows, oldest)
	}
	c.rows[i] = r
	c.order = append(c.order, i)
	return r
}
