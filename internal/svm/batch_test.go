package svm

import (
	"math"
	"math/rand"
	"testing"
)

func TestExpNegMatchesMathExp(t *testing.T) {
	worst := 0.0
	for x := 0.0; x < 700; x += 0.0013 {
		got, want := expNeg(x), math.Exp(-x)
		if want == 0 {
			continue
		}
		if rel := math.Abs(got-want) / want; rel > worst {
			worst = rel
		}
	}
	if worst > 1e-13 {
		t.Fatalf("worst relative error %g, want <= 1e-13", worst)
	}
}

func TestExpNegEdgeCases(t *testing.T) {
	if got := expNeg(0); got != 1 {
		t.Errorf("expNeg(0) = %v, want 1", got)
	}
	if got := expNeg(1000); got != 0 {
		t.Errorf("expNeg(1000) = %v, want 0", got)
	}
	if got := expNeg(-2); math.Abs(got-math.Exp(2)) > 1e-12*math.Exp(2) {
		t.Errorf("expNeg(-2) = %v, want e^2", got)
	}
	if got := expNeg(math.NaN()); !math.IsNaN(got) {
		t.Errorf("expNeg(NaN) = %v, want NaN", got)
	}
}

// trainTinyModel fits an RBF SVR on a smooth 2-D function.
func trainTinyModel(t *testing.T, n int) (*Model, [][]float64) {
	t.Helper()
	r := rand.New(rand.NewSource(7))
	x := make([][]float64, n)
	z := make([]float64, n)
	for i := range x {
		a, b := r.Float64()*2-1, r.Float64()*2-1
		x[i] = []float64{a, b}
		z[i] = math.Sin(2*a) + b*b
	}
	m, err := Train(x, z, TrainParams{
		Kernel:  Kernel{Type: RBF, Gamma: 0.5},
		C:       10,
		Epsilon: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, x
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	m, x := trainTinyModel(t, 60)
	got, err := m.PredictBatch(x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.PredictAll(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("row %d: batch %v vs single %v", i, got[i], want[i])
		}
	}
}

func TestPredictBatchOddSVCounts(t *testing.T) {
	// Exercise the <4 remainder loop of the blocked distance pass by
	// truncating the SV set to lengths around the unroll factor.
	m, x := trainTinyModel(t, 40)
	for _, nsv := range []int{1, 2, 3, 4, 5, 7} {
		if m.NumSV() < nsv {
			t.Skipf("only %d SVs", m.NumSV())
		}
		sub := &Model{
			Kernel: m.Kernel,
			SV:     m.SV[:nsv],
			Coef:   m.Coef[:nsv],
			Rho:    m.Rho,
			Dim:    m.Dim,
		}
		got, err := sub.PredictBatch(x[:8])
		if err != nil {
			t.Fatal(err)
		}
		for i, row := range x[:8] {
			want, err := sub.Predict(row)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got[i]-want) > 1e-9 {
				t.Errorf("nsv=%d row %d: batch %v vs single %v", nsv, i, got[i], want)
			}
		}
	}
}

func TestPredictBatchEmptyAndErrors(t *testing.T) {
	m, _ := trainTinyModel(t, 20)
	out, err := m.PredictBatch(nil)
	if err != nil || len(out) != 0 {
		t.Errorf("empty batch: out=%v err=%v", out, err)
	}
	if _, err := m.PredictBatch([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged batch accepted")
	}
}

func TestPredictBatchNonRBFFallback(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	x := make([][]float64, 30)
	z := make([]float64, 30)
	for i := range x {
		a := r.Float64()*2 - 1
		x[i] = []float64{a, -a}
		z[i] = 3*a + 1
	}
	m, err := Train(x, z, TrainParams{
		Kernel:  Kernel{Type: Linear},
		C:       10,
		Epsilon: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.PredictBatch(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range x {
		want, err := m.Predict(row)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Errorf("row %d: batch %v vs single %v", i, got[i], want)
		}
	}
}

func TestTransformIntoMatchesTransform(t *testing.T) {
	s, err := NewScaler(-1, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := [][]float64{{0, 10, 5}, {4, 20, 5}, {2, 15, 5}}
	if err := s.Fit(data); err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 3)
	for _, row := range data {
		want, err := s.Transform(row)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.TransformInto(row, dst); err != nil {
			t.Fatal(err)
		}
		for j := range dst {
			if dst[j] != want[j] {
				t.Errorf("feature %d: into %v vs alloc %v", j, dst[j], want[j])
			}
		}
	}
	// Constant feature maps to midpoint.
	if err := s.TransformInto(data[0], dst); err != nil {
		t.Fatal(err)
	}
	if dst[2] != 0 {
		t.Errorf("constant feature = %v, want midpoint 0", dst[2])
	}
	// Dst length mismatch is an error.
	if err := s.TransformInto(data[0], make([]float64, 2)); err == nil {
		t.Error("short dst accepted")
	}
}
