package svm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKernelValidate(t *testing.T) {
	tests := []struct {
		name string
		k    Kernel
		ok   bool
	}{
		{"linear", Kernel{Type: Linear}, true},
		{"rbf ok", Kernel{Type: RBF, Gamma: 0.5}, true},
		{"rbf zero gamma", Kernel{Type: RBF}, false},
		{"poly ok", Kernel{Type: Polynomial, Gamma: 1, Degree: 3}, true},
		{"poly zero degree", Kernel{Type: Polynomial, Gamma: 1}, false},
		{"poly zero gamma", Kernel{Type: Polynomial, Degree: 2}, false},
		{"sigmoid ok", Kernel{Type: Sigmoid, Gamma: 0.1}, true},
		{"sigmoid zero gamma", Kernel{Type: Sigmoid}, false},
		{"unknown", Kernel{Type: KernelType(99)}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.k.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, ok %v", err, tt.ok)
			}
		})
	}
}

func TestLinearKernelIsDot(t *testing.T) {
	k := Kernel{Type: Linear}
	if got := k.Eval([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("linear = %v, want 32", got)
	}
}

func TestRBFProperties(t *testing.T) {
	k := Kernel{Type: RBF, Gamma: 0.7}
	x := []float64{1, 2}
	if got := k.Eval(x, x); got != 1 {
		t.Errorf("K(x,x) = %v, want 1", got)
	}
	near := k.Eval(x, []float64{1.1, 2})
	far := k.Eval(x, []float64{5, 9})
	if !(near > far && far > 0 && near < 1) {
		t.Errorf("RBF decay violated: near %v far %v", near, far)
	}
}

func TestPolynomialKernel(t *testing.T) {
	k := Kernel{Type: Polynomial, Gamma: 2, Coef0: 1, Degree: 2}
	// (2*(1*1+0*0)+1)^2 = 9
	if got := k.Eval([]float64{1, 0}, []float64{1, 0}); got != 9 {
		t.Errorf("poly = %v, want 9", got)
	}
}

func TestSigmoidKernel(t *testing.T) {
	k := Kernel{Type: Sigmoid, Gamma: 1, Coef0: 0}
	got := k.Eval([]float64{0.5}, []float64{1})
	if want := math.Tanh(0.5); math.Abs(got-want) > 1e-15 {
		t.Errorf("sigmoid = %v, want %v", got, want)
	}
}

func TestKernelSymmetryProperty(t *testing.T) {
	kernels := []Kernel{
		{Type: Linear},
		{Type: RBF, Gamma: 0.3},
		{Type: Polynomial, Gamma: 0.5, Coef0: 1, Degree: 3},
		{Type: Sigmoid, Gamma: 0.2, Coef0: -0.5},
	}
	f := func(a, b [4]float64) bool {
		x, z := a[:], b[:]
		for _, v := range append(x, z...) {
			if math.IsNaN(v) || math.Abs(v) > 1e3 {
				return true
			}
		}
		for _, k := range kernels {
			l, r := k.Eval(x, z), k.Eval(z, x)
			if math.IsNaN(l) || math.Abs(l-r) > 1e-9*math.Max(1, math.Abs(l)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKernelTypeStringRoundTrip(t *testing.T) {
	for _, kt := range []KernelType{Linear, Polynomial, RBF, Sigmoid} {
		back, err := ParseKernelType(kt.String())
		if err != nil {
			t.Fatal(err)
		}
		if back != kt {
			t.Errorf("round trip %v -> %v", kt, back)
		}
	}
	if _, err := ParseKernelType("bogus"); err == nil {
		t.Error("bogus kernel name should fail")
	}
	if got := KernelType(42).String(); got != "KernelType(42)" {
		t.Errorf("unknown String = %q", got)
	}
}

func TestEvalPanicsOnInvalidType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Kernel{Type: KernelType(9)}.Eval([]float64{1}, []float64{1})
}
