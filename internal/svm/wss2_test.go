package svm

import (
	"math"
	"testing"

	"vmtherm/internal/mathx"
)

// wss2Data builds a moderately hard regression problem.
func wss2Data(n int, seed int64) ([][]float64, []float64) {
	g := mathx.NewRNG(seed)
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a := g.Uniform(-2, 2)
		b := g.Uniform(-2, 2)
		x[i] = []float64{a, b}
		y[i] = math.Sin(a)*math.Cos(b) + 0.3*a*b + g.Normal(0, 0.05)
	}
	return x, y
}

func TestSecondOrderMatchesFirstOrderPredictions(t *testing.T) {
	x, y := wss2Data(120, 33)
	p1 := TrainParams{Kernel: Kernel{Type: RBF, Gamma: 0.7}, C: 10, Epsilon: 0.05,
		Selection: MaxViolatingPair}
	p2 := p1
	p2.Selection = SecondOrder
	m1, err := Train(x, y, p1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(x, y, p2)
	if err != nil {
		t.Fatal(err)
	}
	// Both solve the same convex problem: predictions must agree to within
	// the stopping tolerance.
	g := mathx.NewRNG(34)
	for i := 0; i < 50; i++ {
		probe := []float64{g.Uniform(-2, 2), g.Uniform(-2, 2)}
		a, err := m1.Predict(probe)
		if err != nil {
			t.Fatal(err)
		}
		b, err := m2.Predict(probe)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 0.05 {
			t.Errorf("rules disagree at %v: %v vs %v", probe, a, b)
		}
	}
}

func TestSecondOrderConvergesInFewerIterations(t *testing.T) {
	x, y := wss2Data(200, 35)
	p1 := TrainParams{Kernel: Kernel{Type: RBF, Gamma: 0.7}, C: 50, Epsilon: 0.01,
		Selection: MaxViolatingPair}
	p2 := p1
	p2.Selection = SecondOrder
	m1, err := Train(x, y, p1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(x, y, p2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("iterations: first-order %d, second-order %d", m1.Iters, m2.Iters)
	// WSS2's whole point: strictly fewer iterations on non-trivial problems.
	if m2.Iters >= m1.Iters {
		t.Errorf("second-order used %d iterations, first-order %d", m2.Iters, m1.Iters)
	}
}

func TestSecondOrderKKT(t *testing.T) {
	// The KKT certificate must hold for WSS2 solutions too.
	x, y := wss2Data(80, 36)
	const c = 5.0
	m, err := Train(x, y, TrainParams{Kernel: Kernel{Type: RBF, Gamma: 0.5}, C: c,
		Epsilon: 0.1, Selection: SecondOrder})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, b := range m.Coef {
		if math.Abs(b) > c+1e-9 {
			t.Errorf("beta %v violates box constraint", b)
		}
		sum += b
	}
	if math.Abs(sum) > 1e-6 {
		t.Errorf("sum of betas = %v, want 0", sum)
	}
}

func TestValidateRejectsUnknownSelection(t *testing.T) {
	p := DefaultTrainParams(2)
	p.Selection = SelectionRule(9)
	if err := p.Validate(); err == nil {
		t.Error("unknown selection rule should fail validation")
	}
}
