package svm

import (
	"fmt"
	"sync"
)

// Batch prediction. A fleet-scale prediction service evaluates hundreds of
// rows per request, so the per-row path matters: Model.Predict walks a
// [][]float64 of support vectors (a pointer chase per SV), re-dispatches on
// the kernel type per SV, and pays math.Exp per kernel value. PredictBatch
// amortizes all of that across the batch: the support vectors are flattened
// once into a contiguous row-major matrix, squared distances are computed
// four SVs at a time with independent accumulators (breaking the FP add
// dependency chain), and the exponentials go through expNeg. Scratch buffers
// are reused across rows, so a batch of n rows costs one O(nSV) allocation
// total instead of per-row garbage.

// flatSVs returns the support vectors as one contiguous row-major matrix,
// building and caching it on first use. Callers must not mutate SV after
// prediction has started (the single-row path makes the same assumption).
func (m *Model) flatSVs() []float64 {
	m.flatOnce.Do(func() {
		flat := make([]float64, len(m.SV)*m.Dim)
		for i, sv := range m.SV {
			copy(flat[i*m.Dim:(i+1)*m.Dim], sv)
		}
		m.flatSV = flat
	})
	return m.flatSV
}

// PredictBatch evaluates the model on every row of xs, returning one
// prediction per row. Results match Predict to ~1e-12 relative (the batch
// path uses a table-driven exponential); use it whenever more than a
// handful of rows are evaluated together.
func (m *Model) PredictBatch(xs [][]float64) ([]float64, error) {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out, nil
	}
	for i, x := range xs {
		if len(x) != m.Dim {
			return nil, fmt.Errorf("svm: batch row %d has %d features, model wants %d", i, len(x), m.Dim)
		}
	}
	if m.Kernel.Type != RBF {
		// Non-RBF kernels are dot-product shaped and not exp-bound; the
		// generic path is already close to memory-bandwidth-bound.
		for i, x := range xs {
			v, err := m.Predict(x)
			if err != nil {
				return nil, fmt.Errorf("svm: batch row %d: %w", i, err)
			}
			out[i] = v
		}
		return out, nil
	}

	flat := m.flatSVs()
	nsv := len(m.SV)
	dists := make([]float64, nsv)
	gamma := m.Kernel.Gamma
	for i, x := range xs {
		sqDistsInto(flat, m.Dim, x, dists)
		var sum float64
		k := 0
		for ; k+4 <= nsv; k += 4 {
			sum += m.Coef[k]*expNeg(gamma*dists[k]) +
				m.Coef[k+1]*expNeg(gamma*dists[k+1]) +
				m.Coef[k+2]*expNeg(gamma*dists[k+2]) +
				m.Coef[k+3]*expNeg(gamma*dists[k+3])
		}
		for ; k < nsv; k++ {
			sum += m.Coef[k] * expNeg(gamma*dists[k])
		}
		out[i] = sum - m.Rho
	}
	return out, nil
}

// sqDistsGeneric writes ||sv_k - x||^2 for every support-vector row of flat
// (row-major, stride dim) into dists. Four rows are processed per pass with
// independent accumulators so the FP adds pipeline instead of serializing;
// amd64 replaces the hot block with an AVX2 kernel (dist_amd64.go).
func sqDistsGeneric(flat []float64, dim int, x, dists []float64) {
	n := len(dists)
	xs := x[:dim:dim]
	k := 0
	for ; k+4 <= n; k += 4 {
		base := k * dim
		sv0 := flat[base : base+dim : base+dim]
		sv1 := flat[base+dim : base+2*dim : base+2*dim]
		sv2 := flat[base+2*dim : base+3*dim : base+3*dim]
		sv3 := flat[base+3*dim : base+4*dim : base+4*dim]
		var d0, d1, d2, d3 float64
		for j := 0; j < dim; j++ {
			xv := xs[j]
			t0 := sv0[j] - xv
			t1 := sv1[j] - xv
			t2 := sv2[j] - xv
			t3 := sv3[j] - xv
			d0 += t0 * t0
			d1 += t1 * t1
			d2 += t2 * t2
			d3 += t3 * t3
		}
		dists[k] = d0
		dists[k+1] = d1
		dists[k+2] = d2
		dists[k+3] = d3
	}
	for ; k < n; k++ {
		sv := flat[k*dim : (k+1)*dim : (k+1)*dim]
		var d float64
		for j := 0; j < dim; j++ {
			t := sv[j] - xs[j]
			d += t * t
		}
		dists[k] = d
	}
}

// batchCache holds the lazily built flattened support-vector matrix.
type batchCache struct {
	flatOnce sync.Once
	flatSV   []float64
}
