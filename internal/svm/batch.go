package svm

import (
	"fmt"
	"sync"
)

// Batch prediction. A fleet-scale prediction service evaluates hundreds of
// rows per request, so the per-row path matters: Model.Predict walks a
// [][]float64 of support vectors (a pointer chase per SV), re-dispatches on
// the kernel type per SV, and pays math.Exp per kernel value. The batch
// entry points amortize all of that: the support vectors are flattened once
// into a contiguous row-major matrix, squared distances are computed four
// SVs at a time with independent accumulators (breaking the FP add
// dependency chain), and the exponentials go through expNeg.
//
// PredictBatchInto is the allocation-free spine — flat row-major input,
// caller-owned output and scratch — that steady-state serving loops (the
// fleet anchor fan-out, the prediction service's batch endpoints) pump every
// round without generating garbage. PredictBatch is the convenience wrapper
// that still allocates its result.

// flatSVs returns the support vectors as one contiguous row-major matrix,
// building and caching it on first use. Callers must not mutate SV after
// prediction has started (the single-row path makes the same assumption).
func (m *Model) flatSVs() []float64 {
	m.flatOnce.Do(func() {
		flat := make([]float64, len(m.SV)*m.Dim)
		for i, sv := range m.SV {
			copy(flat[i*m.Dim:(i+1)*m.Dim], sv)
		}
		m.flatSV = flat
	})
	return m.flatSV
}

// BatchScratch holds the reusable working memory of PredictBatchInto. The
// zero value is ready to use; buffers grow to the model's support-vector
// count on first use and are reused afterwards, so a long-lived scratch
// makes repeated batch predictions allocation-free. A scratch must not be
// shared between concurrent calls.
type BatchScratch struct {
	dists []float64
}

// grow returns the scratch's distance buffer resized to n support vectors.
func (s *BatchScratch) grow(n int) []float64 {
	if cap(s.dists) < n {
		s.dists = make([]float64, n)
	}
	s.dists = s.dists[:n]
	return s.dists
}

// predictRowRBF evaluates one pre-scaled row against the flattened support
// vectors using the caller's distance buffer.
func (m *Model) predictRowRBF(flat, x, dists []float64) float64 {
	sqDistsInto(flat, m.Dim, x, dists)
	gamma := m.Kernel.Gamma
	nsv := len(dists)
	var sum float64
	k := 0
	for ; k+4 <= nsv; k += 4 {
		sum += m.Coef[k]*expNeg(gamma*dists[k]) +
			m.Coef[k+1]*expNeg(gamma*dists[k+1]) +
			m.Coef[k+2]*expNeg(gamma*dists[k+2]) +
			m.Coef[k+3]*expNeg(gamma*dists[k+3])
	}
	for ; k < nsv; k++ {
		sum += m.Coef[k] * expNeg(gamma*dists[k])
	}
	return sum - m.Rho
}

// PredictBatchInto evaluates the model on len(out) rows stored row-major in
// xs (len(xs) must be len(out)·Dim) and writes one prediction per row into
// out. Rows must already be in the model's feature space (scaled). With a
// warm scratch the call allocates nothing; it is safe to run concurrently
// as long as each call has its own scratch.
func (m *Model) PredictBatchInto(xs []float64, out []float64, scratch *BatchScratch) error {
	n := len(out)
	if len(xs) != n*m.Dim {
		return fmt.Errorf("svm: flat batch of %d values is not %d rows × %d features", len(xs), n, m.Dim)
	}
	if n == 0 {
		return nil
	}
	if m.Kernel.Type != RBF {
		// Non-RBF kernels are dot-product shaped and not exp-bound; the
		// generic path is already close to memory-bandwidth-bound.
		for i := 0; i < n; i++ {
			v, err := m.Predict(xs[i*m.Dim : (i+1)*m.Dim])
			if err != nil {
				return fmt.Errorf("svm: batch row %d: %w", i, err)
			}
			out[i] = v
		}
		return nil
	}
	flat := m.flatSVs()
	dists := scratch.grow(len(m.SV))
	for i := 0; i < n; i++ {
		out[i] = m.predictRowRBF(flat, xs[i*m.Dim:(i+1)*m.Dim], dists)
	}
	return nil
}

// PredictBatch evaluates the model on every row of xs, returning one
// prediction per row. Results match Predict to ~1e-12 relative (the batch
// path uses a table-driven exponential); use it whenever more than a
// handful of rows are evaluated together. Serving loops that run batches
// every round should use PredictBatchInto with a reused scratch instead.
func (m *Model) PredictBatch(xs [][]float64) ([]float64, error) {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out, nil
	}
	for i, x := range xs {
		if len(x) != m.Dim {
			return nil, fmt.Errorf("svm: batch row %d has %d features, model wants %d", i, len(x), m.Dim)
		}
	}
	if m.Kernel.Type != RBF {
		for i, x := range xs {
			v, err := m.Predict(x)
			if err != nil {
				return nil, fmt.Errorf("svm: batch row %d: %w", i, err)
			}
			out[i] = v
		}
		return out, nil
	}
	flat := m.flatSVs()
	var scratch BatchScratch
	dists := scratch.grow(len(m.SV))
	for i, x := range xs {
		out[i] = m.predictRowRBF(flat, x, dists)
	}
	return out, nil
}

// sqDistsGeneric writes ||sv_k - x||^2 for every support-vector row of flat
// (row-major, stride dim) into dists. Four rows are processed per pass with
// independent accumulators so the FP adds pipeline instead of serializing;
// amd64 replaces the hot block with an AVX2 kernel (dist_amd64.go).
func sqDistsGeneric(flat []float64, dim int, x, dists []float64) {
	n := len(dists)
	xs := x[:dim:dim]
	k := 0
	for ; k+4 <= n; k += 4 {
		base := k * dim
		sv0 := flat[base : base+dim : base+dim]
		sv1 := flat[base+dim : base+2*dim : base+2*dim]
		sv2 := flat[base+2*dim : base+3*dim : base+3*dim]
		sv3 := flat[base+3*dim : base+4*dim : base+4*dim]
		var d0, d1, d2, d3 float64
		for j := 0; j < dim; j++ {
			xv := xs[j]
			t0 := sv0[j] - xv
			t1 := sv1[j] - xv
			t2 := sv2[j] - xv
			t3 := sv3[j] - xv
			d0 += t0 * t0
			d1 += t1 * t1
			d2 += t2 * t2
			d3 += t3 * t3
		}
		dists[k] = d0
		dists[k+1] = d1
		dists[k+2] = d2
		dists[k+3] = d3
	}
	for ; k < n; k++ {
		sv := flat[k*dim : (k+1)*dim : (k+1)*dim]
		var d float64
		for j := 0; j < dim; j++ {
			t := sv[j] - xs[j]
			d += t * t
		}
		dists[k] = d
	}
}

// batchCache holds the lazily built flattened support-vector matrix.
type batchCache struct {
	flatOnce sync.Once
	flatSV   []float64
}
