package mlgrid

import (
	"context"
	"math"
	"testing"
	"time"

	"vmtherm/internal/mathx"
	"vmtherm/internal/svm"
)

// smallConfig keeps unit-test searches fast.
func smallConfig() Config {
	return Config{
		Cs:       []float64{1, 10},
		Gammas:   []float64{0.1, 1},
		Epsilons: []float64{0.1},
		Folds:    4,
		Kernel:   svm.Kernel{Type: svm.RBF, Gamma: 1},
		Seed:     1,
	}
}

// quadData generates y = x² with mild noise.
func quadData(n int, seed int64) ([][]float64, []float64) {
	g := mathx.NewRNG(seed)
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		xi := g.Uniform(-2, 2)
		x[i] = []float64{xi}
		y[i] = xi*xi + g.Normal(0, 0.05)
	}
	return x, y
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"default small", func(*Config) {}, true},
		{"no Cs", func(c *Config) { c.Cs = nil }, false},
		{"no gammas", func(c *Config) { c.Gammas = nil }, false},
		{"no epsilons", func(c *Config) { c.Epsilons = nil }, false},
		{"one fold", func(c *Config) { c.Folds = 1 }, false},
		{"negative workers", func(c *Config) { c.Workers = -1 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate = %v, ok %v", err, tt.ok)
			}
		})
	}
}

func TestDefaultIsEasygridLike(t *testing.T) {
	cfg := Default()
	if cfg.Folds != 10 {
		t.Errorf("default folds = %d, want 10 (paper)", cfg.Folds)
	}
	if cfg.Kernel.Type != svm.RBF {
		t.Error("default kernel should be RBF (paper)")
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
	// Exponential ladders.
	if cfg.Cs[0] != 0.25 || cfg.Cs[len(cfg.Cs)-1] != 256 {
		t.Errorf("C ladder = %v", cfg.Cs)
	}
}

func TestSearchFindsGoodPoint(t *testing.T) {
	x, y := quadData(80, 42)
	best, all, err := Search(context.Background(), x, y, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("scored %d points, want 4", len(all))
	}
	if best.Err != nil {
		t.Fatalf("best has error: %v", best.Err)
	}
	// The winning model should actually generalize: re-train and eval.
	kernel := svm.Kernel{Type: svm.RBF, Gamma: best.Point.Gamma}
	m, err := svm.Train(x, y, svm.TrainParams{Kernel: kernel, C: best.Point.C, Epsilon: best.Point.Epsilon})
	if err != nil {
		t.Fatal(err)
	}
	probeX, probeY := quadData(40, 1000)
	pred, err := m.PredictAll(probeX)
	if err != nil {
		t.Fatal(err)
	}
	mse, err := mathx.MSE(pred, probeY)
	if err != nil {
		t.Fatal(err)
	}
	if mse > 0.1 {
		t.Errorf("winning point generalizes poorly: test MSE %v", mse)
	}
	// Results must be sorted ascending by MSE.
	for i := 1; i < len(all); i++ {
		if all[i-1].Err == nil && all[i].Err == nil && all[i-1].MSE > all[i].MSE {
			t.Error("results not sorted by MSE")
		}
	}
}

func TestSearchDeterministic(t *testing.T) {
	x, y := quadData(60, 7)
	cfg := smallConfig()
	b1, _, err := Search(context.Background(), x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := Search(context.Background(), x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Point != b2.Point || b1.MSE != b2.MSE {
		t.Errorf("search not deterministic: %+v vs %+v", b1, b2)
	}
}

func TestSearchParallelMatchesSerial(t *testing.T) {
	x, y := quadData(60, 11)
	serial := smallConfig()
	serial.Workers = 1
	parallel := smallConfig()
	parallel.Workers = 4
	bs, _, err := Search(context.Background(), x, y, serial)
	if err != nil {
		t.Fatal(err)
	}
	bp, _, err := Search(context.Background(), x, y, parallel)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Point != bp.Point || math.Abs(bs.MSE-bp.MSE) > 1e-12 {
		t.Errorf("parallel result differs: %+v vs %+v", bs, bp)
	}
}

func TestSearchInputValidation(t *testing.T) {
	cfg := smallConfig()
	x, y := quadData(10, 1)
	if _, _, err := Search(context.Background(), x, y[:5], cfg); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, _, err := Search(context.Background(), x[:3], y[:3], cfg); err == nil {
		t.Error("fewer samples than folds should fail")
	}
	bad := cfg
	bad.Folds = 0
	if _, _, err := Search(context.Background(), x, y, bad); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestSearchCancellation(t *testing.T) {
	x, y := quadData(200, 3)
	cfg := Default() // big grid so cancellation lands mid-flight
	cfg.Workers = 2
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err := Search(ctx, x, y, cfg)
	if err == nil {
		t.Skip("search finished before cancellation on this machine")
	}
	if ctx.Err() == nil {
		t.Error("error returned but context not done")
	}
}

func TestAssignFoldsBalanced(t *testing.T) {
	folds := assignFolds(103, 10, 5)
	counts := map[int]int{}
	for _, f := range folds {
		counts[f]++
	}
	if len(counts) != 10 {
		t.Fatalf("got %d distinct folds, want 10", len(counts))
	}
	for f, c := range counts {
		if c < 10 || c > 11 {
			t.Errorf("fold %d has %d samples, want 10–11", f, c)
		}
	}
}

func TestAssignFoldsDeterministicBySeed(t *testing.T) {
	a := assignFolds(50, 5, 9)
	b := assignFolds(50, 5, 9)
	c := assignFolds(50, 5, 10)
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different folds")
	}
	if !diff {
		t.Error("different seeds produced identical folds")
	}
}

func TestSearchRefinedAtLeastAsGood(t *testing.T) {
	x, y := quadData(80, 55)
	cfg := smallConfig()
	coarse, _, err := Search(context.Background(), x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := SearchRefined(context.Background(), x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if refined.MSE > coarse.MSE {
		t.Errorf("refined MSE %v worse than coarse %v", refined.MSE, coarse.MSE)
	}
}

func TestSearchRefinedPropagatesErrors(t *testing.T) {
	bad := smallConfig()
	bad.Folds = 0
	if _, err := SearchRefined(context.Background(), nil, nil, bad); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestRefineAxisGeometric(t *testing.T) {
	axis := refineAxis([]float64{1, 4, 16}, 4)
	if len(axis) != 5 {
		t.Fatalf("axis len = %d", len(axis))
	}
	if axis[0] != 1 || axis[2] != 4 || axis[4] != 16 {
		t.Errorf("axis = %v", axis)
	}
	// Midpoints are geometric means.
	if math.Abs(axis[1]-2) > 1e-12 || math.Abs(axis[3]-8) > 1e-12 {
		t.Errorf("axis midpoints = %v, %v", axis[1], axis[3])
	}
	// Degenerate single-value axis.
	single := refineAxis([]float64{3}, 3)
	if len(single) != 5 {
		t.Errorf("single-coarse axis = %v", single)
	}
}
