// Package mlgrid reproduces the paper's hyper-parameter selection procedure:
// "Parameters for model training are selected using easygrid, a tool for grid
// parameter search, with 10-fold validation." It exhaustively scores a
// (C, γ, ε) grid by k-fold cross-validated MSE, evaluating grid points on a
// bounded worker pool with deterministic fold assignment.
package mlgrid

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"vmtherm/internal/mathx"
	"vmtherm/internal/svm"
)

// Point is one grid cell: the hyper-parameters being searched.
type Point struct {
	C       float64
	Gamma   float64
	Epsilon float64
}

// Result is a scored grid point.
type Result struct {
	Point Point
	// MSE is the mean of per-fold validation MSEs.
	MSE float64
	// Err is non-nil if any fold failed to train; such points lose ties.
	Err error
}

// Config configures the search.
type Config struct {
	// Cs, Gammas, Epsilons enumerate the grid axes. easygrid's defaults are
	// exponential ladders; Default() provides equivalents.
	Cs, Gammas, Epsilons []float64
	// Folds is the cross-validation fold count; the paper uses 10.
	Folds int
	// Kernel is the kernel family searched (gamma is overridden per point).
	Kernel svm.Kernel
	// Seed drives the deterministic fold shuffle.
	Seed int64
	// Workers bounds parallelism; 0 selects GOMAXPROCS.
	Workers int
	// MaxIter is passed through to svm.Train (0 = library default).
	MaxIter int
	// Selection is the SMO working-set rule; Default() picks SecondOrder
	// (LIBSVM's WSS2).
	Selection svm.SelectionRule
}

// Default returns an easygrid-like exponential grid with 10-fold validation.
func Default() Config {
	return Config{
		Cs:        ladder(-2, 8, 2), // 2^-2 .. 2^8
		Gammas:    ladder(-8, 2, 2), // 2^-8 .. 2^2
		Epsilons:  []float64{0.05, 0.1, 0.2},
		Folds:     10,
		Kernel:    svm.Kernel{Type: svm.RBF, Gamma: 1},
		Seed:      1,
		Selection: svm.SecondOrder,
	}
}

func ladder(lo, hi, step int) []float64 {
	var out []float64
	for e := lo; e <= hi; e += step {
		out = append(out, math.Pow(2, float64(e)))
	}
	return out
}

// Validate checks the search configuration.
func (c Config) Validate() error {
	if len(c.Cs) == 0 || len(c.Gammas) == 0 || len(c.Epsilons) == 0 {
		return errors.New("mlgrid: empty grid axis")
	}
	if c.Folds < 2 {
		return fmt.Errorf("mlgrid: folds must be >= 2, got %d", c.Folds)
	}
	if c.Workers < 0 {
		return fmt.Errorf("mlgrid: negative workers %d", c.Workers)
	}
	return nil
}

// Search scores every grid point by k-fold cross-validation and returns all
// results sorted by MSE ascending (failed points last), plus the best point.
// It honours ctx cancellation.
func Search(ctx context.Context, x [][]float64, y []float64, cfg Config) (best Result, all []Result, err error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, nil, err
	}
	if len(x) != len(y) {
		return Result{}, nil, fmt.Errorf("mlgrid: %d rows vs %d targets", len(x), len(y))
	}
	if len(x) < cfg.Folds {
		return Result{}, nil, fmt.Errorf("mlgrid: %d samples cannot fill %d folds", len(x), cfg.Folds)
	}

	folds := assignFolds(len(x), cfg.Folds, cfg.Seed)

	var points []Point
	for _, c := range cfg.Cs {
		for _, g := range cfg.Gammas {
			for _, e := range cfg.Epsilons {
				points = append(points, Point{C: c, Gamma: g, Epsilon: e})
			}
		}
	}

	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}

	jobs := make(chan int)
	results := make([]Result, len(points))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				p := points[idx]
				mse, err := crossValidate(ctx, x, y, folds, cfg, p)
				results[idx] = Result{Point: p, MSE: mse, Err: err}
			}
		}()
	}
	// Feed jobs; stop early on cancellation.
feed:
	for i := range points {
		select {
		case <-ctx.Done():
			break feed
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Result{}, nil, fmt.Errorf("mlgrid: search cancelled: %w", err)
	}

	sort.SliceStable(results, func(i, j int) bool {
		ri, rj := results[i], results[j]
		if (ri.Err == nil) != (rj.Err == nil) {
			return ri.Err == nil
		}
		return ri.MSE < rj.MSE
	})
	if results[0].Err != nil {
		return Result{}, results, fmt.Errorf("mlgrid: every grid point failed; first: %w", results[0].Err)
	}
	return results[0], results, nil
}

// SearchRefined runs a coarse search followed by a fine search on a denser
// grid centred at the coarse winner — the two-stage procedure easy.py
// popularized. The fine grid spans one coarse step around the winner on the
// C and γ axes (ε is kept from the winner). Returns the better of the two
// stages.
func SearchRefined(ctx context.Context, x [][]float64, y []float64, cfg Config) (Result, error) {
	coarseBest, _, err := Search(ctx, x, y, cfg)
	if err != nil {
		return Result{}, err
	}
	fine := cfg
	fine.Cs = refineAxis(cfg.Cs, coarseBest.Point.C)
	fine.Gammas = refineAxis(cfg.Gammas, coarseBest.Point.Gamma)
	fine.Epsilons = []float64{coarseBest.Point.Epsilon}
	fineBest, _, err := Search(ctx, x, y, fine)
	if err != nil {
		return Result{}, err
	}
	if fineBest.MSE < coarseBest.MSE {
		return fineBest, nil
	}
	return coarseBest, nil
}

// refineAxis builds a 5-point geometric axis spanning one coarse step on
// each side of the winning value.
func refineAxis(coarse []float64, winner float64) []float64 {
	step := 4.0 // default coarse ratio
	if len(coarse) >= 2 && coarse[0] > 0 {
		step = coarse[1] / coarse[0]
	}
	if step <= 1 {
		return []float64{winner}
	}
	half := math.Sqrt(step)
	return []float64{winner / step, winner / half, winner, winner * half, winner * step}
}

// crossValidate returns the mean validation MSE of point p across folds.
func crossValidate(ctx context.Context, x [][]float64, y []float64, folds []int, cfg Config, p Point) (float64, error) {
	k := cfg.Folds
	var total float64
	for f := 0; f < k; f++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		var trainX, valX [][]float64
		var trainY, valY []float64
		for i := range x {
			if folds[i] == f {
				valX = append(valX, x[i])
				valY = append(valY, y[i])
			} else {
				trainX = append(trainX, x[i])
				trainY = append(trainY, y[i])
			}
		}
		if len(valX) == 0 {
			return 0, fmt.Errorf("mlgrid: fold %d empty", f)
		}
		kernel := cfg.Kernel
		kernel.Gamma = p.Gamma
		m, err := svm.Train(trainX, trainY, svm.TrainParams{
			Kernel:    kernel,
			C:         p.C,
			Epsilon:   p.Epsilon,
			MaxIter:   cfg.MaxIter,
			Selection: cfg.Selection,
		})
		if err != nil {
			return 0, fmt.Errorf("mlgrid: fold %d: %w", f, err)
		}
		pred, err := m.PredictAll(valX)
		if err != nil {
			return 0, err
		}
		mse, err := mathx.MSE(pred, valY)
		if err != nil {
			return 0, err
		}
		total += mse
	}
	return total / float64(k), nil
}

// assignFolds deterministically shuffles sample indices into k folds.
func assignFolds(n, k int, seed int64) []int {
	rng := mathx.SplitStable(seed, "mlgrid-folds")
	perm := rng.Perm(n)
	folds := make([]int, n)
	for pos, idx := range perm {
		folds[idx] = pos % k
	}
	return folds
}
