// Package testbed assembles the simulated equivalent of the paper's physical
// experiment rig: one observed server (vmm.Host for capacity accounting +
// thermal.Server for heat) driven by a workload.Case on the discrete-event
// engine, observed through a noisy sensor, and producing the temperature
// traces every experiment consumes.
package testbed

import (
	"errors"
	"fmt"

	"vmtherm/internal/mathx"
	"vmtherm/internal/sim"
	"vmtherm/internal/thermal"
	"vmtherm/internal/timeseries"
	"vmtherm/internal/vmm"
	"vmtherm/internal/workload"
)

// RunConfig controls one experiment run.
type RunConfig struct {
	// DurationS is the experiment length t_exp (paper runs 1800 s).
	DurationS float64
	// TickS is how often task load profiles and thermals advance.
	TickS float64
	// SampleS is the sensor sampling interval.
	SampleS float64
}

// DefaultRunConfig mirrors the paper's experiment shape.
func DefaultRunConfig() RunConfig {
	return RunConfig{DurationS: 1800, TickS: 1, SampleS: 5}
}

// Validate checks run parameters.
func (c RunConfig) Validate() error {
	if c.DurationS <= 0 {
		return fmt.Errorf("testbed: duration must be > 0, got %v", c.DurationS)
	}
	if c.TickS <= 0 || c.TickS > c.DurationS {
		return fmt.Errorf("testbed: tick %v invalid for duration %v", c.TickS, c.DurationS)
	}
	if c.SampleS <= 0 || c.SampleS > c.DurationS {
		return fmt.Errorf("testbed: sample interval %v invalid", c.SampleS)
	}
	return nil
}

// Result holds the traces of one run.
type Result struct {
	// SensorTemps is the noisy, quantized CPU temperature as the predictors
	// see it.
	SensorTemps *timeseries.Series
	// TrueTemps is the noise-free die temperature (for evaluation only).
	TrueTemps *timeseries.Series
	// Utilization is host CPU utilization over time.
	Utilization *timeseries.Series
	// MemActive is host memory activity over time.
	MemActive *timeseries.Series
}

// StableTemp implements the paper's Eq. (1): the mean observed temperature
// after tBreak seconds.
func (r *Result) StableTemp(tBreakS float64) (float64, error) {
	return r.SensorTemps.MeanAfter(tBreakS)
}

// Rig is one assembled experiment: an observed host and its thermal model,
// the VMs of a workload case, and the profiles that drive their tasks.
type Rig struct {
	cse      workload.Case
	engine   *sim.Engine
	host     *vmm.Host
	server   *thermal.Server
	sensor   *thermal.Sensor
	vms      map[string]*vmm.VM
	profiles map[string]map[string]workload.Profile // vm id → task id → profile
	// asyncErr captures the first failure raised inside a scheduled
	// scenario event; Run surfaces it.
	asyncErr error
}

// Options configures rig construction beyond the workload case.
type Options struct {
	// Server overrides the thermal parameters (FanCount/AmbientC are always
	// taken from the case). Zero value selects defaults.
	Server thermal.ServerParams
	// Sensor overrides the sensor error model. Zero value selects defaults.
	Sensor thermal.SensorParams
	// Seed drives all stochastic components of the rig.
	Seed int64
}

// New builds a rig from a case: host and VMs are created, placed, and
// started at t=0; the thermal server takes the case's fan count and ambient.
func New(c workload.Case, opts Options) (*Rig, error) {
	if len(c.VMs) == 0 {
		return nil, errors.New("testbed: case has no VMs")
	}
	sp := opts.Server
	if sp == (thermal.ServerParams{}) {
		sp = thermal.DefaultServerParams()
	}
	sp.FanCount = c.FanCount
	sp.AmbientC = c.AmbientC
	srv, err := thermal.NewServer(sp)
	if err != nil {
		return nil, fmt.Errorf("testbed: thermal server: %w", err)
	}
	snp := opts.Sensor
	if snp == (thermal.SensorParams{}) {
		snp = thermal.DefaultSensorParams()
	}
	sensor, err := thermal.NewSensor(snp, srv.DieTemp, mathx.SplitStable(opts.Seed, "sensor:"+c.Name))
	if err != nil {
		return nil, fmt.Errorf("testbed: sensor: %w", err)
	}
	host, err := vmm.NewHost("host:"+c.Name, c.Host)
	if err != nil {
		return nil, fmt.Errorf("testbed: host: %w", err)
	}

	r := &Rig{
		cse:      c,
		engine:   sim.NewEngine(),
		host:     host,
		server:   srv,
		sensor:   sensor,
		vms:      make(map[string]*vmm.VM, len(c.VMs)),
		profiles: make(map[string]map[string]workload.Profile, len(c.VMs)),
	}
	for _, spec := range c.VMs {
		vm, err := vmm.NewVM(spec.ID, spec.Config)
		if err != nil {
			return nil, err
		}
		for _, ts := range spec.Tasks {
			if err := vm.AddTask(ts.Task); err != nil {
				return nil, err
			}
		}
		if err := host.Place(vm); err != nil {
			return nil, fmt.Errorf("testbed: placing %s: %w", spec.ID, err)
		}
		if err := vm.Start(0); err != nil {
			return nil, err
		}
		r.vms[spec.ID] = vm
		r.registerProfiles(spec)
	}
	return r, nil
}

func (r *Rig) registerProfiles(spec workload.VMSpec) {
	m := make(map[string]workload.Profile, len(spec.Tasks))
	for _, ts := range spec.Tasks {
		if ts.Profile != nil {
			m[ts.Task.ID] = ts.Profile
		}
	}
	r.profiles[spec.ID] = m
}

// Case returns the workload case this rig was built from.
func (r *Rig) Case() workload.Case { return r.cse }

// Engine exposes the simulation engine so scenarios can inject events
// (migrations, fan failures, ambient changes) before or between runs.
func (r *Rig) Engine() *sim.Engine { return r.engine }

// Host exposes the observed host.
func (r *Rig) Host() *vmm.Host { return r.host }

// Server exposes the thermal model (e.g. for fan failure injection).
func (r *Rig) Server() *thermal.Server { return r.server }

// VM returns a case VM by id.
func (r *Rig) VM(id string) (*vmm.VM, error) {
	vm, ok := r.vms[id]
	if !ok {
		return nil, fmt.Errorf("testbed: no vm %q", id)
	}
	return vm, nil
}

// Track registers an externally created VM (e.g. one migrating in from
// another host) so its task profiles are driven by this rig's clock.
func (r *Rig) Track(vm *vmm.VM, tasks []workload.TaskSpec) error {
	if vm == nil {
		return errors.New("testbed: nil vm")
	}
	if _, ok := r.vms[vm.ID()]; ok {
		return fmt.Errorf("testbed: vm %q already tracked", vm.ID())
	}
	r.vms[vm.ID()] = vm
	m := make(map[string]workload.Profile, len(tasks))
	for _, ts := range tasks {
		if ts.Profile != nil {
			m[ts.Task.ID] = ts.Profile
		}
	}
	r.profiles[vm.ID()] = m
	return nil
}

// Run executes the experiment for cfg.DurationS seconds of virtual time and
// returns the recorded traces. Run may be called repeatedly; time continues
// from where the previous run ended.
func (r *Rig) Run(cfg RunConfig) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{
		SensorTemps: timeseries.New(),
		TrueTemps:   timeseries.New(),
		Utilization: timeseries.New(),
		MemActive:   timeseries.New(),
	}
	start := r.engine.Now()

	var tickErr error
	stopTick, err := r.engine.Every(cfg.TickS, "tick", func(e *sim.Engine) {
		if err := r.tick(e, cfg.TickS); err != nil && tickErr == nil {
			tickErr = err
			e.Stop()
		}
	})
	if err != nil {
		return nil, err
	}
	defer stopTick()

	stopSample, err := r.engine.Every(cfg.SampleS, "sample", func(e *sim.Engine) {
		t := e.Now() - start
		// A transient read failure just drops the sample, as in a real
		// collector; the noise-free trace always records.
		if v, err := r.sensor.Read(); err == nil {
			res.SensorTemps.MustAppend(t, v)
		}
		res.TrueTemps.MustAppend(t, r.server.DieTemp())
		res.Utilization.MustAppend(t, r.host.Utilization())
		res.MemActive.MustAppend(t, r.host.MemActiveFrac())
	})
	if err != nil {
		return nil, err
	}
	defer stopSample()

	if _, err := r.engine.RunUntil(start + cfg.DurationS); err != nil {
		return nil, err
	}
	if tickErr != nil {
		return nil, fmt.Errorf("testbed: tick: %w", tickErr)
	}
	if r.asyncErr != nil {
		err := r.asyncErr
		r.asyncErr = nil
		return nil, err
	}
	if res.SensorTemps.Len() == 0 {
		return nil, errors.New("testbed: run recorded no samples")
	}
	return res, nil
}

// tick applies load profiles and advances thermals by dt.
func (r *Rig) tick(e *sim.Engine, dt float64) error {
	t := e.Now()
	for vmID, profs := range r.profiles {
		vm := r.vms[vmID]
		if vm.State() != vmm.VMRunning && vm.State() != vmm.VMMigrating {
			continue
		}
		for taskID, p := range profs {
			if err := vm.SetTaskCPU(taskID, p.At(t)); err != nil {
				return err
			}
		}
	}
	r.server.SetLoad(r.host.Utilization(), r.host.MemActiveFrac())
	return r.server.Advance(dt)
}
