package testbed

import (
	"testing"

	"vmtherm/internal/vmm"
	"vmtherm/internal/workload"
)

func hotVMSpec(id string) workload.VMSpec {
	return workload.VMSpec{
		ID:     id,
		Config: vmm.VMConfig{VCPUs: 4, MemoryGB: 8},
		Tasks: []workload.TaskSpec{
			{
				Task:    vmm.Task{ID: id + "-t0", Class: vmm.CPUBound, CPUFraction: 0.95, MemGB: 2},
				Profile: workload.Constant{Level: 0.95},
			},
			{
				Task:    vmm.Task{ID: id + "-t1", Class: vmm.CPUBound, CPUFraction: 0.9, MemGB: 1},
				Profile: workload.Constant{Level: 0.9},
			},
		},
	}
}

func TestScheduleMigrationInHeatsServer(t *testing.T) {
	c := smallCase(t)
	baseRig, err := New(c, Options{Seed: 40})
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := baseRig.Run(DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := baseRes.SensorTemps.MeanAfter(1500)
	if err != nil {
		t.Fatal(err)
	}

	migRig, err := New(c, Options{Seed: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := migRig.ScheduleMigrationIn(600, hotVMSpec("hot"), vmm.DefaultMigrationSpec()); err != nil {
		t.Fatal(err)
	}
	migRes, err := migRig.Run(DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	withMig, err := migRes.SensorTemps.MeanAfter(1500)
	if err != nil {
		t.Fatal(err)
	}
	if withMig <= baseline+1 {
		t.Errorf("migrated-in hot VM should heat the server: %v vs baseline %v", withMig, baseline)
	}
	// The VM must have landed on the observed host and be running.
	vm, err := migRig.VM("hot")
	if err != nil {
		t.Fatal(err)
	}
	if vm.State() != vmm.VMRunning {
		t.Errorf("migrated VM state = %v", vm.State())
	}
	if _, err := migRig.Host().VM("hot"); err != nil {
		t.Error("migrated VM not on observed host")
	}
}

func TestScheduleMigrationInValidation(t *testing.T) {
	rig, err := New(smallCase(t), Options{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	empty := workload.VMSpec{ID: "x", Config: vmm.VMConfig{VCPUs: 1, MemoryGB: 1}}
	if err := rig.ScheduleMigrationIn(100, empty, vmm.DefaultMigrationSpec()); err == nil {
		t.Error("taskless VM should fail")
	}
	if err := rig.ScheduleMigrationIn(100, hotVMSpec("y"), vmm.MigrationSpec{}); err == nil {
		t.Error("invalid migration spec should fail")
	}
}

func TestScheduleMigrationOutCoolsServer(t *testing.T) {
	c := smallCase(t)
	baseRig, err := New(c, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := baseRig.Run(DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := baseRes.SensorTemps.MeanAfter(1500)
	if err != nil {
		t.Fatal(err)
	}

	outRig, err := New(c, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Move the busiest VM off at t=600.
	busiest := c.VMs[0].ID
	var best float64
	for _, spec := range c.VMs {
		var demand float64
		for _, ts := range spec.Tasks {
			demand += ts.Task.CPUFraction
		}
		if demand > best {
			best, busiest = demand, spec.ID
		}
	}
	if err := outRig.ScheduleMigrationOut(600, busiest, vmm.DefaultMigrationSpec()); err != nil {
		t.Fatal(err)
	}
	outRes, err := outRig.Run(DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	after, err := outRes.SensorTemps.MeanAfter(1500)
	if err != nil {
		t.Fatal(err)
	}
	if after >= baseline {
		t.Errorf("migrating out the busiest VM should cool the server: %v vs %v", after, baseline)
	}
	if outRig.Host().NumVMs() != len(c.VMs)-1 {
		t.Errorf("host still has %d VMs", outRig.Host().NumVMs())
	}
}

func TestScheduleMigrationOutUnknownVM(t *testing.T) {
	rig, err := New(smallCase(t), Options{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.ScheduleMigrationOut(100, "ghost", vmm.DefaultMigrationSpec()); err == nil {
		t.Error("unknown VM should fail")
	}
}

func TestScheduleAmbientChange(t *testing.T) {
	rig, err := New(smallCase(t), Options{Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.ScheduleAmbient(900, rig.Case().AmbientC+10); err != nil {
		t.Fatal(err)
	}
	res, err := rig.Run(DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	before, err := res.SensorTemps.MeanAfter(600)
	if err != nil {
		t.Fatal(err)
	}
	late, err := res.SensorTemps.MeanAfter(1500)
	if err != nil {
		t.Fatal(err)
	}
	if late <= before+3 {
		t.Errorf("+10 °C ambient at t=900 should lift late temps: %v vs %v", late, before)
	}
	if rig.Server().Ambient() != rig.Case().AmbientC+10 {
		t.Error("ambient change not applied")
	}
}

func TestScheduleFanFailuresValidation(t *testing.T) {
	rig, err := New(smallCase(t), Options{Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.ScheduleFanFailures(100, 0); err == nil {
		t.Error("zero failures should fail")
	}
	if err := rig.ScheduleFanFailures(100, 99); err == nil {
		t.Error("more failures than fans should fail")
	}
}

func TestMigrationInRejectionSurfacesViaRun(t *testing.T) {
	// Fill the observed host so the inbound migration is rejected; the
	// error must surface from Run rather than being swallowed.
	opts := workload.DefaultGenOptions()
	opts.VMCountMin, opts.VMCountMax = 3, 3
	c, err := workload.GenerateCase(opts, 46, "full")
	if err != nil {
		t.Fatal(err)
	}
	rig, err := New(c, Options{Seed: 46})
	if err != nil {
		t.Fatal(err)
	}
	// A VM too large for any host.
	big := workload.VMSpec{
		ID:     "huge",
		Config: vmm.VMConfig{VCPUs: 4, MemoryGB: 60},
		Tasks: []workload.TaskSpec{
			{Task: vmm.Task{ID: "huge-t", Class: vmm.CPUBound, CPUFraction: 0.5, MemGB: 8}},
		},
	}
	// Source host (same config as observed host) must admit it, but the
	// observed host is already carrying the case VMs' memory.
	if err := rig.ScheduleMigrationIn(100, big, vmm.DefaultMigrationSpec()); err != nil {
		t.Fatal(err)
	}
	_, err = rig.Run(DefaultRunConfig())
	if err == nil {
		t.Skip("case left enough memory free; rejection not triggered")
	}
	// Error surfaced — rig must be reusable afterwards.
	if _, err := rig.Run(RunConfig{DurationS: 60, TickS: 1, SampleS: 10}); err != nil {
		t.Errorf("rig unusable after surfaced async error: %v", err)
	}
}
