package testbed

import (
	"errors"
	"fmt"

	"vmtherm/internal/sim"
	"vmtherm/internal/vmm"
	"vmtherm/internal/workload"
)

// Scenario injectors: schedule runtime events on a rig before (or between)
// Run calls. These realize the paper's "dynamic scenarios such as virtual
// machine migration" where input features change mid-experiment.

// ScheduleFanFailures fails count fans at atS seconds of virtual time.
func (r *Rig) ScheduleFanFailures(atS float64, count int) error {
	if count < 1 {
		return fmt.Errorf("testbed: fan failure count %d < 1", count)
	}
	if count > r.server.Fans().Count() {
		return fmt.Errorf("testbed: cannot fail %d of %d fans", count, r.server.Fans().Count())
	}
	return r.engine.Schedule(atS, "fan-failures", func(*sim.Engine) {
		for i := 0; i < count; i++ {
			if err := r.server.Fans().Fail(i); err != nil && r.asyncErr == nil {
				r.asyncErr = err
			}
		}
	})
}

// ScheduleAmbient changes the rack inlet temperature at atS.
func (r *Rig) ScheduleAmbient(atS, tempC float64) error {
	return r.engine.Schedule(atS, "ambient-change", func(*sim.Engine) {
		r.server.SetAmbient(tempC)
	})
}

// ScheduleMigrationIn live-migrates a new VM onto the observed host at atS:
// the VM is created on an external source host now, runs there, and its
// pre-copy completes after the migration plan's duration — from then on its
// load lands on this rig's server. The migrated VM's task profiles are
// driven by this rig's clock throughout.
func (r *Rig) ScheduleMigrationIn(atS float64, spec workload.VMSpec, mig vmm.MigrationSpec) error {
	if len(spec.Tasks) == 0 {
		return errors.New("testbed: migrating VM has no tasks")
	}
	src, err := vmm.NewHost("ext-src:"+spec.ID, r.host.Config())
	if err != nil {
		return err
	}
	vm, err := vmm.NewVM(spec.ID, spec.Config)
	if err != nil {
		return err
	}
	for _, ts := range spec.Tasks {
		if err := vm.AddTask(ts.Task); err != nil {
			return err
		}
	}
	if err := src.Place(vm); err != nil {
		return err
	}
	if err := vm.Start(r.engine.Now()); err != nil {
		return err
	}
	if err := r.Track(vm, spec.Tasks); err != nil {
		return err
	}
	migrator, err := vmm.NewMigrator(mig)
	if err != nil {
		return err
	}
	return r.engine.Schedule(atS, "migrate-in:"+spec.ID, func(e *sim.Engine) {
		if err := migrator.Migrate(e, vm, src, r.host, nil); err != nil && r.asyncErr == nil {
			r.asyncErr = fmt.Errorf("testbed: migration of %s: %w", spec.ID, err)
		}
	})
}

// ScheduleMigrationOut live-migrates one of the rig's VMs off the observed
// host at atS; after completion its load no longer heats this server.
func (r *Rig) ScheduleMigrationOut(atS float64, vmID string, mig vmm.MigrationSpec) error {
	vm, err := r.VM(vmID)
	if err != nil {
		return err
	}
	dst, err := vmm.NewHost("ext-dst:"+vmID, r.host.Config())
	if err != nil {
		return err
	}
	migrator, err := vmm.NewMigrator(mig)
	if err != nil {
		return err
	}
	return r.engine.Schedule(atS, "migrate-out:"+vmID, func(e *sim.Engine) {
		if err := migrator.Migrate(e, vm, r.host, dst, nil); err != nil && r.asyncErr == nil {
			r.asyncErr = fmt.Errorf("testbed: migration of %s: %w", vmID, err)
		}
	})
}
