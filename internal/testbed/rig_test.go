package testbed

import (
	"math"
	"testing"

	"vmtherm/internal/sim"
	"vmtherm/internal/thermal"
	"vmtherm/internal/vmm"
	"vmtherm/internal/workload"
)

// smallCase builds a deterministic 3-VM case for fast tests.
func smallCase(t *testing.T) workload.Case {
	t.Helper()
	opts := workload.DefaultGenOptions()
	opts.VMCountMin, opts.VMCountMax = 3, 3
	c, err := workload.GenerateCase(opts, 11, "rigtest")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*RunConfig)
		ok     bool
	}{
		{"default", func(*RunConfig) {}, true},
		{"zero duration", func(c *RunConfig) { c.DurationS = 0 }, false},
		{"zero tick", func(c *RunConfig) { c.TickS = 0 }, false},
		{"tick beyond duration", func(c *RunConfig) { c.TickS = c.DurationS + 1 }, false},
		{"zero sample", func(c *RunConfig) { c.SampleS = 0 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultRunConfig()
			tt.mutate(&c)
			err := c.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate = %v, ok %v", err, tt.ok)
			}
		})
	}
}

func TestNewRejectsEmptyCase(t *testing.T) {
	if _, err := New(workload.Case{}, Options{}); err == nil {
		t.Error("empty case should fail")
	}
}

func TestRunProducesWarmingTrace(t *testing.T) {
	rig, err := New(smallCase(t), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rig.Run(RunConfig{DurationS: 1200, TickS: 1, SampleS: 5})
	if err != nil {
		t.Fatal(err)
	}
	first, err := res.TrueTemps.First()
	if err != nil {
		t.Fatal(err)
	}
	last, err := res.TrueTemps.Last()
	if err != nil {
		t.Fatal(err)
	}
	if last.V <= first.V {
		t.Errorf("loaded server did not warm: %v -> %v", first.V, last.V)
	}
	// Ambient must match the case.
	if rig.Server().Ambient() != rig.Case().AmbientC {
		t.Error("ambient not applied from case")
	}
	// Utilization trace should be positive and ≤ 1.
	for _, p := range res.Utilization.Points() {
		if p.V < 0 || p.V > 1 {
			t.Fatalf("utilization out of range: %v", p.V)
		}
	}
}

func TestStableTempMatchesEquationOne(t *testing.T) {
	rig, err := New(smallCase(t), Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rig.Run(DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	stable, err := res.StableTemp(600)
	if err != nil {
		t.Fatal(err)
	}
	// Against the noise-free trace's late mean.
	trueStable, err := res.TrueTemps.MeanAfter(600)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stable-trueStable) > 1 {
		t.Errorf("sensor stable %v vs true %v", stable, trueStable)
	}
	// And the final reading should be near the stable value (settled).
	last, _ := res.TrueTemps.Last()
	if math.Abs(last.V-trueStable) > 1 {
		t.Errorf("trace not settled: last %v vs stable %v", last.V, trueStable)
	}
}

func TestRunDeterministicAcrossRigs(t *testing.T) {
	c := smallCase(t)
	r1, err := New(c, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(c, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := r1.Run(RunConfig{DurationS: 600, TickS: 1, SampleS: 5})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r2.Run(RunConfig{DurationS: 600, TickS: 1, SampleS: 5})
	if err != nil {
		t.Fatal(err)
	}
	a := res1.SensorTemps.Values()
	b := res2.SensorTemps.Values()
	if len(a) != len(b) {
		t.Fatal("trace lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Different seed → different sensor noise.
	r3, err := New(c, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res3, err := r3.Run(RunConfig{DurationS: 600, TickS: 1, SampleS: 5})
	if err != nil {
		t.Fatal(err)
	}
	cvals := res3.SensorTemps.Values()
	same := true
	for i := range a {
		if i < len(cvals) && a[i] != cvals[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sensor traces")
	}
}

func TestSequentialRunsContinueClock(t *testing.T) {
	rig, err := New(smallCase(t), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rig.Run(RunConfig{DurationS: 300, TickS: 1, SampleS: 10}); err != nil {
		t.Fatal(err)
	}
	warm := rig.Server().DieTemp()
	res2, err := rig.Run(RunConfig{DurationS: 300, TickS: 1, SampleS: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rig.Engine().Now() != 600 {
		t.Errorf("engine clock = %v, want 600", rig.Engine().Now())
	}
	// Second run starts from the warm state, not ambient.
	first, _ := res2.TrueTemps.First()
	if math.Abs(first.V-warm) > 2 {
		t.Errorf("second run restarted cold: %v vs warm %v", first.V, warm)
	}
}

func TestMoreVMsRunHotter(t *testing.T) {
	opts := workload.DefaultGenOptions()
	opts.FanChoices = []int{4}
	opts.AmbientMinC, opts.AmbientMaxC = 22, 22

	stableFor := func(nVMs int) float64 {
		opts.VMCountMin, opts.VMCountMax = nVMs, nVMs
		c, err := workload.GenerateCase(opts, 21, "load")
		if err != nil {
			t.Fatal(err)
		}
		rig, err := New(c, Options{Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		res, err := rig.Run(DefaultRunConfig())
		if err != nil {
			t.Fatal(err)
		}
		st, err := res.StableTemp(600)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	few := stableFor(2)
	many := stableFor(12)
	if many <= few {
		t.Errorf("12 VMs (%v °C) should run hotter than 2 VMs (%v °C)", many, few)
	}
}

func TestFanFailureDuringRunRaisesTemp(t *testing.T) {
	c := smallCase(t)
	run := func(failFans bool) float64 {
		rig, err := New(c, Options{Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		if failFans {
			err := rig.Engine().Schedule(300, "fail-fans", func(*sim.Engine) {
				for i := 0; i < rig.Server().Fans().Count()-1; i++ {
					if err := rig.Server().Fans().Fail(i); err != nil {
						t.Error(err)
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		res, err := rig.Run(DefaultRunConfig())
		if err != nil {
			t.Fatal(err)
		}
		st, err := res.StableTemp(900)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	healthy := run(false)
	failed := run(true)
	if failed <= healthy+2 {
		t.Errorf("fan failure should raise stable temp: healthy %v vs failed %v", healthy, failed)
	}
}

func TestVMLookup(t *testing.T) {
	c := smallCase(t)
	rig, err := New(c, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rig.VM("nope"); err == nil {
		t.Error("unknown vm should fail")
	}
	vm, err := rig.VM(c.VMs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if vm.State() != vmm.VMRunning {
		t.Errorf("case vm state = %v, want running", vm.State())
	}
}

func TestTrackExternalVM(t *testing.T) {
	rig, err := New(smallCase(t), Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	ext, err := vmm.NewVM("external", vmm.VMConfig{VCPUs: 2, MemoryGB: 4})
	if err != nil {
		t.Fatal(err)
	}
	task := vmm.Task{ID: "x", Class: vmm.CPUBound, CPUFraction: 0.5, MemGB: 1}
	if err := ext.AddTask(task); err != nil {
		t.Fatal(err)
	}
	spec := []workload.TaskSpec{{Task: task, Profile: workload.Constant{Level: 0.9}}}
	if err := rig.Track(nil, spec); err == nil {
		t.Error("nil vm should fail")
	}
	if err := rig.Track(ext, spec); err != nil {
		t.Fatal(err)
	}
	if err := rig.Track(ext, spec); err == nil {
		t.Error("double track should fail")
	}
	// Place + start it on the rig host; the tick should drive its profile.
	if err := rig.Host().Place(ext); err != nil {
		t.Fatal(err)
	}
	if err := ext.Start(rig.Engine().Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.Run(RunConfig{DurationS: 60, TickS: 1, SampleS: 10}); err != nil {
		t.Fatal(err)
	}
	// Profile (0.9) must have overridden the initial fraction (0.5).
	got := ext.Tasks()[0].CPUFraction
	if got != 0.9 {
		t.Errorf("tracked vm task fraction = %v, want 0.9", got)
	}
}

func TestThermalOptionsOverride(t *testing.T) {
	c := smallCase(t)
	sp := thermal.DefaultServerParams()
	sp.Power.MaxW = 300 // hotter silicon
	rigHot, err := New(c, Options{Server: sp, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	rigStd, err := New(c, Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	resHot, err := rigHot.Run(DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	resStd, err := rigStd.Run(DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	hot, _ := resHot.StableTemp(600)
	std, _ := resStd.StableTemp(600)
	if hot <= std {
		t.Errorf("override had no effect: hot %v vs std %v", hot, std)
	}
}

func TestFlakySensorStillProducesStableTemp(t *testing.T) {
	// Transient sensor failures drop samples (like a real collector) but
	// must not corrupt the experiment or Eq. (1).
	c := smallCase(t)
	sp := thermal.DefaultSensorParams()
	sp.FailProb = 0.3
	rig, err := New(c, Options{Sensor: sp, Seed: 60})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rig.Run(DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	// ~30% of sensor samples dropped; true trace complete.
	if res.SensorTemps.Len() >= res.TrueTemps.Len() {
		t.Error("failures should drop sensor samples")
	}
	if res.SensorTemps.Len() < res.TrueTemps.Len()/2 {
		t.Error("too many samples dropped for 30% failure rate")
	}
	stable, err := res.StableTemp(600)
	if err != nil {
		t.Fatal(err)
	}
	trueStable, err := res.TrueTemps.MeanAfter(600)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stable-trueStable) > 1 {
		t.Errorf("flaky-sensor stable %v far from true %v", stable, trueStable)
	}
}
