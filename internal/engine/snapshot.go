package engine

import (
	"fmt"
	"sort"

	"vmtherm/internal/core"
)

// SessionState is one session's complete serializable state: the predictor
// (curve anchors, configuration, calibration γ and its Δ_update clock), the
// ψ_stable the session is anchored to, the anchor instant, and the newest
// telemetry instant (the staleness/eviction clock). Together these are
// exactly what a warm restart must carry so the restored session observes,
// calibrates, re-anchors and evicts identically to the original.
type SessionState struct {
	ID        string
	Predictor core.PredictorState
	StableC   float64
	AnchorAtS float64
	LastAtS   float64
}

// State is an engine's complete serializable state.
type State struct {
	// NextID is the service-facing id counter ("s1", "s2", ...), so a
	// restored engine never reissues a live session's id.
	NextID uint64
	// Sessions is every live session, sorted by id (deterministic bytes for
	// identical state).
	Sessions []SessionState
}

// Snapshot captures every live session. It is safe against concurrent
// Observe/Predict/Create/Delete traffic but, like Round, must not overlap a
// Round on the same engine if the capture is to be a consistent cut.
func (e *Engine) Snapshot() State {
	st := State{NextID: e.nextID.Load()}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		for id, sess := range sh.sessions {
			sess.mu.Lock()
			st.Sessions = append(st.Sessions, SessionState{
				ID:        id,
				Predictor: sess.pred.State(),
				StableC:   sess.stable,
				AnchorAtS: sess.anchorAt,
				LastAtS:   sess.lastAtS,
			})
			sess.mu.Unlock()
		}
		sh.mu.RUnlock()
	}
	sort.Slice(st.Sessions, func(i, j int) bool { return st.Sessions[i].ID < st.Sessions[j].ID })
	return st
}

// Restore replaces the engine's entire session population with the captured
// state. Existing sessions are discarded; the engine configuration is kept
// (per-session overrides travel inside each session's predictor config).
// On error the engine is left empty rather than half-restored.
func (e *Engine) Restore(st State) error {
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		clear(sh.sessions)
		sh.mu.Unlock()
	}
	e.count.Store(0)
	e.nextID.Store(st.NextID)
	for _, ss := range st.Sessions {
		if ss.ID == "" {
			return fmt.Errorf("engine: restore: session %d has empty id", len(st.Sessions))
		}
		pred, err := core.RestorePredictor(ss.Predictor)
		if err != nil {
			return fmt.Errorf("engine: restore session %q: %w", ss.ID, err)
		}
		sess := &session{pred: pred, stable: ss.StableC, anchorAt: ss.AnchorAtS, lastAtS: ss.LastAtS}
		sh := e.shardFor(ss.ID)
		sh.mu.Lock()
		if _, dup := sh.sessions[ss.ID]; dup {
			sh.mu.Unlock()
			return fmt.Errorf("engine: restore: duplicate session id %q", ss.ID)
		}
		sh.sessions[ss.ID] = sess
		sh.mu.Unlock()
		e.count.Add(1)
	}
	return nil
}
