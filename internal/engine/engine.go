// Package engine is the unified per-host session engine behind both the
// fleet control plane and the prediction service: one implementation of the
// paper's online lifecycle — create a session anchored at (φ(0), ψ_stable),
// observe φ(t), calibrate every Δ_update (Eqs. 4–6), re-anchor when the
// batch ψ_stable prediction moves (deployment changed), answer Δ_gap-ahead
// queries (Eq. 8), widen uncertainty as telemetry goes stale, and evict
// sessions whose telemetry has been dark for too long.
//
// The engine is built for fleet-scale concurrency and round throughput:
// sessions live in a sharded, striped-lock map (per-shard RWMutex over the
// id→session map, per-session mutex over the DynamicPredictor), so hundreds
// of monitoring agents observe and predict fully in parallel while the
// control loop runs batch rounds over the same sessions. Round appends into
// a caller-owned buffer and allocates nothing on the hot path; allocation
// happens only when a session is created or re-anchored.
package engine

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"vmtherm/internal/core"
	"vmtherm/internal/telemetry"
)

// Config parameterizes the session lifecycle. Zero values take defaults via
// withDefaults; see DefaultConfig for the reference shape (the paper's
// running-example parameters).
type Config struct {
	// Lambda is the calibration learning rate λ (paper: 0.8).
	Lambda float64
	// UpdateEveryS is Δ_update, the calibration interval.
	UpdateEveryS float64
	// GapS is Δ_gap, the prediction horizon.
	GapS float64
	// TBreakS and CurveDeltaS shape the Eq. (3) pre-defined curve.
	TBreakS, CurveDeltaS float64
	// StaleAfterS is how old a host's telemetry may get before the host is
	// degraded: its prediction is marked stale (callers exclude it from
	// hotspot maps) and calibration stops until fresh telemetry arrives.
	StaleAfterS float64
	// EvictAfterS is how old a host's telemetry may get before its session
	// is evicted entirely (and its last reading forgotten): a host dark this
	// long is gone, not merely degraded. 0 disables eviction.
	EvictAfterS float64
	// ReanchorEpsC re-anchors a session when its predicted ψ_stable moves by
	// more than this (the deployment changed underneath it).
	ReanchorEpsC float64
	// UncertaintyBaseC and UncertaintyPerSC shape per-prediction uncertainty:
	// base + perS · staleness.
	UncertaintyBaseC, UncertaintyPerSC float64
	// Shards is the stripe count of the session map; it is rounded up to a
	// power of two so the hash reduces with a mask (default 32).
	Shards int
	// RoundWorkers bounds the worker pool Round shards its per-host pass
	// across at fleet scale (>= 1024 hosts). Default 1 keeps rounds serial
	// and unconditionally allocation-free; any value produces identical
	// results (per-host work is independent, evictions and output order are
	// serialized).
	RoundWorkers int
}

// DefaultConfig uses the paper's dynamic parameters (λ=0.8, Δ_update=15 s,
// Δ_gap=60 s, t_break=600 s) with the fleet staleness policy.
func DefaultConfig() Config {
	return Config{
		Lambda:           core.DefaultLambda,
		UpdateEveryS:     15,
		GapS:             60,
		TBreakS:          600,
		CurveDeltaS:      core.DefaultCurveDelta,
		StaleAfterS:      45,
		EvictAfterS:      900,
		ReanchorEpsC:     1.0,
		UncertaintyBaseC: 0.5,
		UncertaintyPerSC: 0.05,
		Shards:           32,
	}
}

// withDefaults fills zero-valued fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Lambda == 0 {
		c.Lambda = d.Lambda
	}
	if c.UpdateEveryS == 0 {
		c.UpdateEveryS = d.UpdateEveryS
	}
	if c.GapS == 0 {
		c.GapS = d.GapS
	}
	if c.TBreakS == 0 {
		c.TBreakS = d.TBreakS
	}
	if c.CurveDeltaS == 0 {
		c.CurveDeltaS = d.CurveDeltaS
	}
	if c.StaleAfterS == 0 {
		c.StaleAfterS = 3 * c.UpdateEveryS
	}
	if c.EvictAfterS == 0 {
		c.EvictAfterS = 20 * c.StaleAfterS
	}
	if c.ReanchorEpsC == 0 {
		c.ReanchorEpsC = d.ReanchorEpsC
	}
	if c.UncertaintyBaseC == 0 {
		c.UncertaintyBaseC = d.UncertaintyBaseC
	}
	if c.UncertaintyPerSC == 0 {
		c.UncertaintyPerSC = d.UncertaintyPerSC
	}
	if c.Shards == 0 {
		c.Shards = d.Shards
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Lambda < 0 || c.Lambda > 1 {
		return fmt.Errorf("engine: lambda %v outside [0,1]", c.Lambda)
	}
	if c.UpdateEveryS <= 0 || c.GapS <= 0 {
		return fmt.Errorf("engine: intervals must be > 0 (update %v, gap %v)", c.UpdateEveryS, c.GapS)
	}
	if c.StaleAfterS <= 0 {
		return fmt.Errorf("engine: stale-after must be > 0, got %v", c.StaleAfterS)
	}
	if c.EvictAfterS < 0 {
		return fmt.Errorf("engine: evict-after must be >= 0, got %v", c.EvictAfterS)
	}
	if c.EvictAfterS > 0 && c.EvictAfterS <= c.StaleAfterS {
		return fmt.Errorf("engine: evict-after %v must exceed stale-after %v", c.EvictAfterS, c.StaleAfterS)
	}
	if c.Shards < 1 {
		return fmt.Errorf("engine: shards %d < 1", c.Shards)
	}
	if c.RoundWorkers < 0 {
		return fmt.Errorf("engine: round workers %d < 0", c.RoundWorkers)
	}
	return nil
}

// ErrNoSession is returned for operations on an unknown session id.
var ErrNoSession = errors.New("engine: no such session")

// ErrImplausibleReading is returned when an observed temperature fails the
// telemetry plausibility bounds (NaN, ±Inf, below −40 °C, above 150 °C):
// calibrating on it would corrupt the session's γ for every prediction
// that follows.
var ErrImplausibleReading = errors.New("engine: implausible temperature reading")

// session is one host's dynamic prediction state: an Eq. (3) curve anchored
// at (anchorAt, φ(anchorAt)) with the ψ_stable the batch model last
// predicted for the host's deployment, the online calibrator, and the mutex
// that serializes access to the (not concurrency-safe) predictor.
type session struct {
	mu       sync.Mutex
	pred     *core.DynamicPredictor
	stable   float64
	anchorAt float64
	// lastAtS is the engine-time instant of the newest telemetry observed
	// into this session (the anchor instant until the first observe). The
	// streaming path reads it to compute staleness without a latest-reading
	// map; guarded by mu like the predictor.
	lastAtS float64
}

// localT converts engine time to session-local curve time.
func (s *session) localT(t float64) float64 { return t - s.anchorAt }

// observe feeds one measurement and returns the resulting γ.
func (s *session) observe(t, tempC float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pred.Observe(s.localT(t), tempC)
	if t > s.lastAtS {
		s.lastAtS = t
	}
	return s.pred.Gamma()
}

// predict answers ψ(t + Δ_gap) and the γ it used.
func (s *session) predict(t float64) (tempC, gamma float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pred.Predict(s.localT(t)), s.pred.Gamma()
}

type shard struct {
	mu       sync.RWMutex
	sessions map[string]*session
}

// Engine is the sharded session store plus the round executor. Create with
// New. All methods are safe for concurrent use, with one carve-out: Round
// must not overlap another Round on the same engine (it owns the shared
// round scratch); it is safe against concurrent Observe/Predict/Create/
// Delete traffic.
type Engine struct {
	cfg    Config
	shards []shard
	mask   uint64
	count  atomic.Int64
	nextID atomic.Uint64
	// scratch backs the sharded round's per-host slots; owned by the single
	// in-flight Round call and reused across rounds.
	scratch []roundSlot
}

// New builds an engine.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	cfg.Shards = n
	e := &Engine{cfg: cfg, shards: make([]shard, n), mask: uint64(n - 1)}
	for i := range e.shards {
		e.shards[i].sessions = make(map[string]*session)
	}
	return e, nil
}

// Config returns the resolved configuration.
func (e *Engine) Config() Config { return e.cfg }

// shardFor hashes a session id onto its stripe (FNV-1a).
func (e *Engine) shardFor(id string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return &e.shards[h&e.mask]
}

// get looks a session up by id.
func (e *Engine) get(id string) (*session, bool) {
	sh := e.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	sh.mu.RUnlock()
	return s, ok
}

// NewID reserves a fresh session id ("s1", "s2", ...), the service-facing
// naming scheme; fleet callers use host ids instead.
func (e *Engine) NewID() string {
	return "s" + strconv.FormatUint(e.nextID.Add(1), 10)
}

// SessionParams describe a session at creation. Zero-valued knobs take the
// engine defaults.
type SessionParams struct {
	// Phi0 is φ(0), the temperature at the anchor instant.
	Phi0 float64
	// StableC is the ψ_stable anchor.
	StableC float64
	// AnchorAtS is the engine-time instant the curve is anchored at; times
	// passed to Observe/Predict are translated to curve-local time against
	// it (0 = session-local times are engine times).
	AnchorAtS float64
	// Lambda, UpdateEveryS, GapS, TBreakS, CurveDeltaS override the engine
	// defaults for this session when non-zero.
	Lambda, UpdateEveryS, GapS, TBreakS, CurveDeltaS float64
}

// Create registers a session under id. Creating over a live id is an error;
// Delete first to rebuild.
func (e *Engine) Create(id string, p SessionParams) error {
	if id == "" {
		return errors.New("engine: empty session id")
	}
	sess, err := e.build(p)
	if err != nil {
		return err
	}
	sh := e.shardFor(id)
	sh.mu.Lock()
	if _, dup := sh.sessions[id]; dup {
		sh.mu.Unlock()
		return fmt.Errorf("engine: session %q already exists", id)
	}
	sh.sessions[id] = sess
	sh.mu.Unlock()
	e.count.Add(1)
	return nil
}

// build constructs session state from params, applying engine defaults.
func (e *Engine) build(p SessionParams) (*session, error) {
	cfg := core.DynamicConfig{Lambda: e.cfg.Lambda, UpdateEveryS: e.cfg.UpdateEveryS, GapS: e.cfg.GapS}
	if p.Lambda != 0 {
		cfg.Lambda = p.Lambda
	}
	if p.UpdateEveryS != 0 {
		cfg.UpdateEveryS = p.UpdateEveryS
	}
	if p.GapS != 0 {
		cfg.GapS = p.GapS
	}
	tBreak := p.TBreakS
	if tBreak == 0 {
		tBreak = e.cfg.TBreakS
	}
	delta := p.CurveDeltaS
	if delta == 0 {
		delta = e.cfg.CurveDeltaS
	}
	curve, err := core.NewCurve(p.Phi0, p.StableC, tBreak, delta)
	if err != nil {
		return nil, err
	}
	pred, err := core.NewDynamicPredictor(curve, cfg)
	if err != nil {
		return nil, err
	}
	return &session{pred: pred, stable: p.StableC, anchorAt: p.AnchorAtS, lastAtS: p.AnchorAtS}, nil
}

// Observe feeds one measurement φ(t) into a session and returns the current
// calibration γ. Implausible temperatures are refused with
// ErrImplausibleReading before they can touch the calibrator.
func (e *Engine) Observe(id string, atS, tempC float64) (float64, error) {
	if telemetry.ClassifyTemp(tempC) != telemetry.RejectNone {
		return 0, ErrImplausibleReading
	}
	s, ok := e.get(id)
	if !ok {
		return 0, ErrNoSession
	}
	return s.observe(atS, tempC), nil
}

// Predict answers ψ(t + Δ_gap) for a session, with the γ it used.
func (e *Engine) Predict(id string, atS float64) (tempC, gamma float64, err error) {
	s, ok := e.get(id)
	if !ok {
		return 0, 0, ErrNoSession
	}
	tempC, gamma = s.predict(atS)
	return tempC, gamma, nil
}

// Stable returns the ψ_stable a session is currently anchored to.
func (e *Engine) Stable(id string) (float64, error) {
	s, ok := e.get(id)
	if !ok {
		return 0, ErrNoSession
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stable, nil
}

// Delete removes a session, reporting whether it existed. Fleet callers use
// it to force a re-anchor after a deployment change (placement, migration).
func (e *Engine) Delete(id string) bool {
	sh := e.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.sessions[id]
	delete(sh.sessions, id)
	sh.mu.Unlock()
	if ok {
		e.count.Add(-1)
	}
	return ok
}

// Len reports the number of live sessions.
func (e *Engine) Len() int {
	return int(e.count.Load())
}

// Prediction is one host's Δ_gap-ahead temperature estimate from a round.
type Prediction struct {
	HostID string
	// TempC is the predicted temperature at now + Δ_gap.
	TempC float64
	// UncertaintyC widens with telemetry staleness.
	UncertaintyC float64
	// StalenessS is the age of the newest telemetry behind the prediction.
	StalenessS float64
	// Stale marks hosts degraded out of hotspot maps.
	Stale bool
}

// RoundStats summarizes one Round call.
type RoundStats struct {
	// Live counts sessions that produced a prediction.
	Live int
	// AnchorFailures counts observed hosts left without a session because
	// the model produced an unusable ψ_stable anchor (graceful blindness
	// must be visible, never silent).
	AnchorFailures int
	// Reanchored counts sessions rebuilt this round (first sight or anchor
	// drift beyond ReanchorEpsC).
	Reanchored int
	// Evicted counts sessions removed because their telemetry exceeded
	// EvictAfterS.
	Evicted int
	// MaxStalenessS is the oldest telemetry age seen this round.
	MaxStalenessS float64
}

// roundParallelMinHosts gates the sharded round: below this population the
// per-host work cannot amortize the goroutine fan-out, and the serial
// path's zero-allocation contract holds unconditionally.
const roundParallelMinHosts = 1024

// roundHost runs one host's share of a round — staleness accounting,
// (re-)anchoring, calibration, Δ_gap prediction — into pred. It reports
// whether a prediction was produced and whether the host must be evicted
// (the eviction itself, which mutates shared maps, is the caller's —
// serial — responsibility). Safe for concurrent calls on distinct hosts:
// sessions live behind striped locks and every counter lands in the
// caller-owned st.
func (e *Engine) roundHost(nowS float64, id string, r telemetry.Reading, anchors map[string]float64, st *RoundStats, pred *Prediction) (ok, evict bool) {
	if r.AtS > nowS {
		// Clock-skewed producer: a future-stamped reading would drive
		// staleness (and uncertainty) negative and jump the calibration
		// schedule ahead; clamp it to the present instead.
		r.AtS = nowS
	}
	staleness := nowS - r.AtS
	if staleness > st.MaxStalenessS {
		st.MaxStalenessS = staleness
	}
	if e.cfg.EvictAfterS > 0 && staleness > e.cfg.EvictAfterS {
		// Dark beyond the eviction horizon: the host is gone, not merely
		// degraded. Forget the session and the fossil reading so the
		// population shrinks instead of accumulating ghosts.
		return false, true
	}
	stale := staleness > e.cfg.StaleAfterS

	sh := e.shardFor(id)
	sh.mu.RLock()
	sess := sh.sessions[id]
	sh.mu.RUnlock()
	anchor, anchored := anchors[id]
	// (Re-)anchor on first sight or when the deployment's predicted
	// ψ_stable moved: the old curve no longer describes this host.
	if anchored && (sess == nil || math.Abs(anchor-sess.stable) > e.cfg.ReanchorEpsC) {
		// On failure (e.g. a NaN anchor from a degenerate model output)
		// keep the previous session if there is one; a host left with no
		// session at all is counted so the blindness is observable.
		if ns, err := e.build(SessionParams{Phi0: r.TempC, StableC: anchor, AnchorAtS: r.AtS}); err == nil {
			sh.mu.Lock()
			if _, had := sh.sessions[id]; !had {
				e.count.Add(1)
			}
			sh.sessions[id] = ns
			sh.mu.Unlock()
			sess = ns
			st.Reanchored++
		}
	}
	if sess == nil {
		st.AnchorFailures++
		return false, false
	}
	if !stale {
		// Calibration: Eqs. (4)–(6) on the session's Δ_update schedule.
		sess.observe(r.AtS, r.TempC)
	}
	st.Live++
	tempC, _ := sess.predict(nowS)
	*pred = Prediction{
		HostID:       id,
		TempC:        tempC,
		UncertaintyC: e.cfg.UncertaintyBaseC + e.cfg.UncertaintyPerSC*staleness,
		StalenessS:   staleness,
		Stale:        stale,
	}
	return true, false
}

// Round executes one control round over a host population: for every id in
// order that has a reading in latest, (re-)anchor the session against the
// batch-predicted ψ_stable in anchors, calibrate on fresh telemetry, and
// append a Δ_gap-ahead prediction to dst. Hosts whose telemetry is older
// than StaleAfterS are degraded (prediction marked stale, no calibration);
// older than EvictAfterS, their session is evicted and their entry removed
// from latest.
//
// dst is appended to and returned (pass dst[:0] to reuse a buffer); beyond
// session (re)creation, Round does not allocate. Hosts absent from latest
// are skipped — never observed means no session and no prediction.
//
// With RoundWorkers > 1 and a population of at least 1024 hosts, the
// per-host pass is sharded across a bounded worker pool: workers write
// disjoint scratch slots and only read latest/anchors, evictions are
// deferred to a serial sweep, and dst is filled in host order afterwards —
// so results (predictions, their order, and the round stats) are identical
// to the serial pass. Round itself must not be called concurrently with
// another Round on the same engine; it remains safe against concurrent
// Observe/Predict/Create/Delete traffic, exactly like the serial path.
func (e *Engine) Round(dst []Prediction, nowS float64, order []string, latest map[string]telemetry.Reading, anchors map[string]float64) ([]Prediction, RoundStats) {
	workers := e.cfg.RoundWorkers
	if len(order) < roundParallelMinHosts {
		workers = 1
	}
	// Keep every worker's chunk large enough to amortize its goroutine.
	if maxW := (len(order) + 255) / 256; workers > maxW {
		workers = maxW
	}
	if workers <= 1 {
		var st RoundStats
		for _, id := range order {
			r, seen := latest[id]
			if !seen {
				continue
			}
			var pred Prediction
			ok, evict := e.roundHost(nowS, id, r, anchors, &st, &pred)
			if evict {
				if e.Delete(id) {
					st.Evicted++
				}
				delete(latest, id)
				continue
			}
			if ok {
				dst = append(dst, pred)
			}
		}
		return dst, st
	}
	return e.roundSharded(workers, dst, nowS, order, latest, anchors)
}

// roundSlot is one host's scratch cell in the sharded round.
type roundSlot struct {
	pred      Prediction
	ok, evict bool
}

// roundSharded is the parallel Round body: chunked host ranges into
// per-index scratch, stats merged in chunk order, evictions and the
// in-order dst fill applied serially.
func (e *Engine) roundSharded(workers int, dst []Prediction, nowS float64, order []string, latest map[string]telemetry.Reading, anchors map[string]float64) ([]Prediction, RoundStats) {
	n := len(order)
	if cap(e.scratch) < n {
		e.scratch = make([]roundSlot, n)
	}
	scratch := e.scratch[:n]
	stats := make([]RoundStats, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			st := &stats[w]
			for i := lo; i < hi; i++ {
				id := order[i]
				r, seen := latest[id]
				if !seen {
					scratch[i].ok, scratch[i].evict = false, false
					continue
				}
				scratch[i].ok, scratch[i].evict = e.roundHost(nowS, id, r, anchors, st, &scratch[i].pred)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	var st RoundStats
	for i := range stats {
		st.Live += stats[i].Live
		st.AnchorFailures += stats[i].AnchorFailures
		st.Reanchored += stats[i].Reanchored
		if stats[i].MaxStalenessS > st.MaxStalenessS {
			st.MaxStalenessS = stats[i].MaxStalenessS
		}
	}
	for i, id := range order {
		if scratch[i].evict {
			if e.Delete(id) {
				st.Evicted++
			}
			delete(latest, id)
			continue
		}
		if scratch[i].ok {
			dst = append(dst, scratch[i].pred)
		}
	}
	return dst, st
}
