package engine

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"vmtherm/internal/telemetry"
)

// TestObserveBatchAppliesAndCreates: pushed readings land in existing
// sessions; unknown hosts are created inline when the anchor lookup is
// warm and deferred when it is not.
func TestObserveBatchAppliesAndCreates(t *testing.T) {
	e := testEngine(t, nil)
	if err := e.Create("known", SessionParams{Phi0: 20, StableC: 60}); err != nil {
		t.Fatal(err)
	}
	warm := func(r telemetry.Reading) (float64, bool) {
		return 55, r.HostID == "warm"
	}
	st := e.ObserveBatch([]telemetry.Reading{
		{HostID: "known", AtS: 0, TempC: 25},
		{HostID: "warm", AtS: 0, TempC: 22},
		{HostID: "cold", AtS: 0, TempC: 22},
	}, warm)
	if st.Applied != 2 || st.Created != 1 || st.Deferred != 1 {
		t.Fatalf("stats %+v, want applied 2 created 1 deferred 1", st)
	}
	if e.Len() != 2 {
		t.Fatalf("sessions = %d, want 2", e.Len())
	}
	// The created session is live and predictable without any round.
	p, err := e.PredictOne("warm", 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stale || p.StalenessS != 0 || p.UncertaintyC != e.Config().UncertaintyBaseC {
		t.Fatalf("fresh streamed host degraded: %+v", p)
	}
	if _, err := e.PredictOne("cold", 0); !errors.Is(err, ErrNoSession) {
		t.Fatalf("deferred host grew a session: %v", err)
	}
	// No lookup at all defers too.
	st = e.ObserveBatch([]telemetry.Reading{{HostID: "cold", AtS: 0, TempC: 22}}, nil)
	if st.Deferred != 1 || st.Applied != 0 {
		t.Fatalf("nil-anchor stats %+v", st)
	}
}

// TestStreamObserveMatchesBatchObserve: the streaming observe is the same
// calibration as the service-facing Observe — same γ, same prediction —
// and re-presenting the reading through a batch round is a calibration
// no-op (the idempotency the two paths compose on).
func TestStreamObserveMatchesBatchObserve(t *testing.T) {
	es := testEngine(t, nil)
	eb := testEngine(t, nil)
	for _, e := range []*Engine{es, eb} {
		if err := e.Create("h0", SessionParams{Phi0: 20, StableC: 60}); err != nil {
			t.Fatal(err)
		}
	}
	es.ObserveBatch([]telemetry.Reading{{HostID: "h0", AtS: 0, TempC: 26}}, nil)
	if _, err := eb.Observe("h0", 0, 26); err != nil {
		t.Fatal(err)
	}
	ps, err := es.PredictOne("h0", 0)
	if err != nil {
		t.Fatal(err)
	}
	tb, _, err := eb.Predict("h0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ps.TempC != tb {
		t.Fatalf("streamed prediction %v != observed prediction %v", ps.TempC, tb)
	}

	// Round re-presents the same newest reading: γ must not move again.
	g1, _ := es.Observe("h0", 0, 26)
	latest := map[string]telemetry.Reading{"h0": {HostID: "h0", AtS: 0, TempC: 26}}
	es.Round(nil, 0, []string{"h0"}, latest, map[string]float64{"h0": 60})
	g2, _ := es.Observe("h0", 0, 26)
	if g1 != g2 {
		t.Fatalf("round re-calibrated an already-streamed reading: γ %v → %v", g1, g2)
	}
}

// TestPredictOneStaleness: PredictOne's staleness tracks the newest
// observed telemetry and widens uncertainty exactly like a round would.
func TestPredictOneStaleness(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.StaleAfterS = 45 })
	if err := e.Create("h0", SessionParams{Phi0: 20, StableC: 60}); err != nil {
		t.Fatal(err)
	}
	e.ObserveBatch([]telemetry.Reading{{HostID: "h0", AtS: 10, TempC: 25}}, nil)
	p, err := e.PredictOne("h0", 110)
	if err != nil {
		t.Fatal(err)
	}
	if p.StalenessS != 100 || !p.Stale {
		t.Fatalf("staleness %v stale %v, want 100/true", p.StalenessS, p.Stale)
	}
	wantU := e.Config().UncertaintyBaseC + e.Config().UncertaintyPerSC*100
	if math.Abs(p.UncertaintyC-wantU) > 1e-9 {
		t.Fatalf("uncertainty %v, want %v", p.UncertaintyC, wantU)
	}
	// A query timestamped before the newest telemetry clamps to zero.
	if p, _ := e.PredictOne("h0", 5); p.StalenessS != 0 || p.Stale {
		t.Fatalf("negative staleness leaked: %+v", p)
	}
}

// TestPredictFreshReturnsPrediction: the synchronous-predictive primitive
// applies the reading and answers in one pass, with zero staleness.
func TestPredictFreshReturnsPrediction(t *testing.T) {
	e := testEngine(t, nil)
	warm := func(telemetry.Reading) (float64, bool) { return 60, true }
	var st StreamStats
	var p Prediction
	if !e.PredictFresh(telemetry.Reading{HostID: "h0", AtS: 0, TempC: 25}, warm, &st, &p) {
		t.Fatal("warm PredictFresh produced no prediction")
	}
	if st.Created != 1 || st.Applied != 1 {
		t.Fatalf("stats %+v", st)
	}
	if p.HostID != "h0" || p.StalenessS != 0 || p.Stale {
		t.Fatalf("prediction %+v", p)
	}
	// It must agree with an observe-then-predict pair on a twin engine.
	e2 := testEngine(t, nil)
	e2.ObserveBatch([]telemetry.Reading{{HostID: "h0", AtS: 0, TempC: 25}}, warm)
	q, err := e2.PredictOne("h0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.TempC != q.TempC {
		t.Fatalf("PredictFresh %v != ObserveBatch+PredictOne %v", p.TempC, q.TempC)
	}
	// A cold host defers and produces nothing.
	cold := func(telemetry.Reading) (float64, bool) { return 0, false }
	if e.PredictFresh(telemetry.Reading{HostID: "h1", AtS: 0, TempC: 25}, cold, &st, &p) {
		t.Fatal("cold PredictFresh fabricated a prediction")
	}
	if st.Deferred != 1 {
		t.Fatalf("deferred = %d, want 1", st.Deferred)
	}
}

// TestStreamObserveZeroAllocWarm: once sessions exist, the streaming
// observe/predict hot path must not allocate — the mirror of
// TestRoundZeroAllocSteadyState for the event-driven path.
func TestStreamObserveZeroAllocWarm(t *testing.T) {
	e := testEngine(t, nil)
	const hosts = 64
	readings := make([]telemetry.Reading, hosts)
	for i := range readings {
		readings[i] = telemetry.Reading{HostID: fmt.Sprintf("h%03d", i), AtS: 0, TempC: 25}
	}
	warm := func(telemetry.Reading) (float64, bool) { return 60, true }
	e.ObserveBatch(readings, warm)
	if e.Len() != hosts {
		t.Fatalf("warm-up created %d sessions, want %d", e.Len(), hosts)
	}

	now := 0.0
	var st StreamStats
	var p Prediction
	allocs := testing.AllocsPerRun(20, func() {
		now += 15
		for i := range readings {
			readings[i].AtS = now
			readings[i].TempC = 30
		}
		st = e.ObserveBatch(readings, warm)
		for i := range readings {
			if !e.PredictFresh(readings[i], nil, &st, &p) {
				t.Fatal("warm PredictFresh failed")
			}
			if _, err := e.PredictOne(readings[i].HostID, now); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs > 0 {
		t.Fatalf("warm streaming observe/predict allocates %.1f times, want 0", allocs)
	}
	// One ObserveBatch apply plus one PredictFresh apply per host.
	if st.Applied != 2*hosts || st.Created != 0 || st.Deferred != 0 {
		t.Fatalf("warm stats %+v", st)
	}
}

// TestStreamConcurrentWithRound hammers the composition under -race:
// ObserveBatch, PredictOne and PredictFresh run concurrently with batch
// rounds over overlapping hosts, plus create/delete churn on a disjoint
// stripe. Correctness here is no data race, no lost sessions, and every
// prediction finite.
func TestStreamConcurrentWithRound(t *testing.T) {
	e := testEngine(t, nil)
	const hosts = 128
	order := make([]string, hosts)
	latest := make(map[string]telemetry.Reading, hosts)
	anchors := make(map[string]float64, hosts)
	for i := range order {
		id := fmt.Sprintf("h%03d", i)
		order[i] = id
		latest[id] = telemetry.Reading{HostID: id, AtS: 0, TempC: 25}
		anchors[id] = 60
	}
	if _, st := e.Round(nil, 0, order, latest, anchors); st.Live != hosts {
		t.Fatalf("seed round live %d", st.Live)
	}

	stop := make(chan struct{})
	var roundWG sync.WaitGroup
	roundWG.Add(1)
	go func() {
		defer roundWG.Done()
		var dst []Prediction
		now := 0.0
		for {
			select {
			case <-stop:
				return
			default:
			}
			now += 15
			for _, id := range order {
				r := latest[id]
				r.AtS = now
				latest[id] = r
			}
			dst, _ = e.Round(dst[:0], now, order, latest, anchors)
		}
	}()

	warm := func(telemetry.Reading) (float64, bool) { return 60, true }
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]telemetry.Reading, 16)
			var st StreamStats
			var p Prediction
			for iter := 0; iter < 200; iter++ {
				now := float64(iter)
				for i := range batch {
					// Overlap the round's population on purpose.
					batch[i] = telemetry.Reading{
						HostID: order[(w*16+i+iter)%hosts],
						AtS:    now,
						TempC:  25 + float64((w+iter)%10),
					}
				}
				e.ObserveBatch(batch, warm)
				if !e.PredictFresh(batch[0], warm, &st, &p) {
					t.Error("PredictFresh on a live host failed")
					return
				}
				if math.IsNaN(p.TempC) || math.IsInf(p.TempC, 0) {
					t.Errorf("non-finite prediction %+v", p)
					return
				}
				if q, err := e.PredictOne(batch[1].HostID, now); err != nil {
					t.Error(err)
					return
				} else if math.IsNaN(q.TempC) {
					t.Errorf("NaN prediction for %s", q.HostID)
					return
				}
				// Churn a worker-private host through create/stream/delete.
				priv := fmt.Sprintf("w%d-priv", w)
				e.ObserveBatch([]telemetry.Reading{{HostID: priv, AtS: now, TempC: 30}}, warm)
				e.Delete(priv)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	roundWG.Wait()

	if got := e.Len(); got != hosts {
		t.Fatalf("engine len = %d, want %d", got, hosts)
	}
}
