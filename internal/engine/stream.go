// Streaming fast path: the event-driven realization of the paper's online
// loop. Where Round is batch-per-Δ_update — collect the fleet's newest
// readings, then sweep — ObserveBatch applies pushed readings to their
// sessions the moment they arrive (per-shard locking, calibration on the
// session's own Δ_update schedule, inline warm-anchor session creation),
// and PredictOne/PredictFresh answer a Δ_gap-ahead query from current
// session state without waiting for the next round.
//
// The two paths compose: the calibrator in core.DynamicPredictor is
// idempotent per timestamp (an observe within Δ_update of the last one is
// a no-op), so a reading streamed on arrival and then re-presented by the
// next batch round calibrates exactly once. Round stays the authority for
// staleness degradation, re-anchoring on deployment drift, and eviction;
// the streaming path only moves fresh telemetry and fresh predictions off
// the round clock.
package engine

import "vmtherm/internal/telemetry"

// AnchorLookup resolves a ψ_stable anchor for a host that has no session
// yet — the inline warm case, typically backed by the fleet's anchor cache.
// Returning ok=false defers the host to the next batch round (which runs
// the full batch model); the lookup must be safe for concurrent calls and
// must not block on model evaluation.
type AnchorLookup func(r telemetry.Reading) (stableC float64, ok bool)

// StreamStats summarizes one streaming call.
type StreamStats struct {
	// Applied counts readings fed into a session on arrival.
	Applied int
	// Created counts sessions built inline from a warm anchor lookup.
	Created int
	// Deferred counts readings left for the next batch round: no session
	// and no warm anchor (or an unusable one). The readings are not lost —
	// callers keep them flowing into the round pipeline.
	Deferred int
	// Rejected counts readings refused for implausible temperatures (NaN,
	// ±Inf, outside the telemetry plausibility bounds): one poisoned
	// observation would corrupt a session's γ for every prediction after
	// it, so the engine is the last line of defense even when an upstream
	// pipeline already filters.
	Rejected int
}

func (s *StreamStats) add(o StreamStats) {
	s.Applied += o.Applied
	s.Created += o.Created
	s.Deferred += o.Deferred
	s.Rejected += o.Rejected
}

// observeOne applies a single pushed reading: look the session up, create
// it inline when a warm anchor resolves, and feed the measurement. Returns
// the session (nil when deferred). The warm path — session exists — takes
// one shard RLock and one session lock and does not allocate.
//
// Out-of-order arrivals degrade gracefully: the calibrator ignores
// observations that do not advance its Δ_update schedule, and lastAtS is
// monotonic, so a late duplicate can neither rewind staleness nor
// double-calibrate. Re-anchoring on ψ_stable drift is deliberately left to
// the batch round, which computes anchors from the authoritative
// deployment state.
func (e *Engine) observeOne(r telemetry.Reading, anchor AnchorLookup, st *StreamStats) *session {
	if telemetry.ClassifyTemp(r.TempC) != telemetry.RejectNone {
		st.Rejected++
		return nil
	}
	sess, _ := e.get(r.HostID)
	if sess == nil {
		if anchor == nil {
			st.Deferred++
			return nil
		}
		stableC, ok := anchor(r)
		if !ok {
			st.Deferred++
			return nil
		}
		ns, err := e.build(SessionParams{Phi0: r.TempC, StableC: stableC, AnchorAtS: r.AtS})
		if err != nil {
			st.Deferred++
			return nil
		}
		sh := e.shardFor(r.HostID)
		sh.mu.Lock()
		if cur, had := sh.sessions[r.HostID]; had {
			// Lost a create race (concurrent push or round); theirs wins.
			sess = cur
		} else {
			sh.sessions[r.HostID] = ns
			sess = ns
			e.count.Add(1)
			st.Created++
		}
		sh.mu.Unlock()
	}
	sess.observe(r.AtS, r.TempC)
	st.Applied++
	return sess
}

// ObserveBatch applies a batch of pushed readings to their sessions on
// arrival. Hosts without a session are created inline when anchor resolves
// a warm ψ_stable, otherwise counted as deferred for the next batch round.
// Safe for concurrent use with Round, PredictOne, and itself; the warm
// path (all sessions exist) performs zero allocations.
func (e *Engine) ObserveBatch(readings []telemetry.Reading, anchor AnchorLookup) StreamStats {
	var st StreamStats
	for i := range readings {
		e.observeOne(readings[i], anchor, &st)
	}
	return st
}

// PredictOne answers a Δ_gap-ahead prediction for one host from current
// session state, without waiting for the next round. Staleness is measured
// against the newest telemetry the session has observed (from either the
// streaming or the batch path), so uncertainty widens exactly as Round
// would report it. Allocation-free.
func (e *Engine) PredictOne(id string, nowS float64) (Prediction, error) {
	var p Prediction
	s, ok := e.get(id)
	if !ok {
		return p, ErrNoSession
	}
	s.mu.Lock()
	tempC := s.pred.Predict(s.localT(nowS))
	lastAt := s.lastAtS
	s.mu.Unlock()
	staleness := nowS - lastAt
	if staleness < 0 {
		staleness = 0
	}
	p = Prediction{
		HostID:       id,
		TempC:        tempC,
		UncertaintyC: e.cfg.UncertaintyBaseC + e.cfg.UncertaintyPerSC*staleness,
		StalenessS:   staleness,
		Stale:        staleness > e.cfg.StaleAfterS,
	}
	return p, nil
}

// PredictFresh is the synchronous-predictive ingest primitive: apply one
// pushed reading and answer the Δ_gap-ahead prediction it implies, in one
// pass. The prediction is evaluated at the reading's own timestamp, so its
// staleness is zero by construction. Reports whether a prediction was
// produced (false when the host was deferred). Allocation-free on the warm
// path.
func (e *Engine) PredictFresh(r telemetry.Reading, anchor AnchorLookup, st *StreamStats, pred *Prediction) bool {
	sess := e.observeOne(r, anchor, st)
	if sess == nil {
		return false
	}
	tempC, _ := sess.predict(r.AtS)
	*pred = Prediction{
		HostID:       r.HostID,
		TempC:        tempC,
		UncertaintyC: e.cfg.UncertaintyBaseC,
	}
	return true
}
