package engine

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"vmtherm/internal/telemetry"
)

func testEngine(t *testing.T, mut func(*Config)) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConfigValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"bad lambda", func(c *Config) { c.Lambda = 1.5 }},
		{"negative gap", func(c *Config) { c.GapS = -1 }},
		{"evict before stale", func(c *Config) { c.StaleAfterS = 100; c.EvictAfterS = 50 }},
	} {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
	}
}

func TestShardsRoundedToPowerOfTwo(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.Shards = 20 })
	if got := e.Config().Shards; got != 32 {
		t.Fatalf("shards = %d, want 32", got)
	}
}

// TestSessionLifecycle covers the service-facing path: create with explicit
// anchors, observe, predict, delete.
func TestSessionLifecycle(t *testing.T) {
	e := testEngine(t, nil)
	id := e.NewID()
	if err := e.Create(id, SessionParams{Phi0: 20, StableC: 60}); err != nil {
		t.Fatal(err)
	}
	if err := e.Create(id, SessionParams{Phi0: 20, StableC: 60}); err == nil {
		t.Fatal("duplicate create accepted")
	}
	if e.Len() != 1 {
		t.Fatalf("len = %d, want 1", e.Len())
	}
	if _, err := e.Observe("ghost", 0, 25); !errors.Is(err, ErrNoSession) {
		t.Fatalf("ghost observe err = %v", err)
	}
	gamma, err := e.Observe(id, 0, 25)
	if err != nil {
		t.Fatal(err)
	}
	// First observation at t=0: dif = 25 − (φ(0)=20 + 0), γ = λ·dif = 4.
	if math.Abs(gamma-4) > 1e-9 {
		t.Fatalf("gamma after first observation = %v, want 4", gamma)
	}
	tempC, gamma2, err := e.Predict(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gamma2 != gamma {
		t.Fatalf("predict gamma %v != observe gamma %v", gamma2, gamma)
	}
	if tempC <= 20 || tempC > 60+gamma+1e-9 {
		t.Fatalf("implausible Δ_gap-ahead prediction %v", tempC)
	}
	if stable, err := e.Stable(id); err != nil || stable != 60 {
		t.Fatalf("stable = %v, %v", stable, err)
	}
	if !e.Delete(id) || e.Delete(id) {
		t.Fatal("delete/double-delete semantics broken")
	}
	if e.Len() != 0 {
		t.Fatalf("len after delete = %d", e.Len())
	}
}

// TestSessionAnchorTranslation: a session anchored at engine time T must
// treat observations at T as curve time 0.
func TestSessionAnchorTranslation(t *testing.T) {
	e := testEngine(t, nil)
	if err := e.Create("a", SessionParams{Phi0: 30, StableC: 70, AnchorAtS: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := e.Create("b", SessionParams{Phi0: 30, StableC: 70}); err != nil {
		t.Fatal(err)
	}
	ga, err := e.Observe("a", 1000, 33)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := e.Observe("b", 0, 33)
	if err != nil {
		t.Fatal(err)
	}
	if ga != gb {
		t.Fatalf("anchored observation gammas differ: %v vs %v", ga, gb)
	}
	pa, _, err := e.Predict("a", 1000)
	if err != nil {
		t.Fatal(err)
	}
	pb, _, err := e.Predict("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Fatalf("anchored predictions differ: %v vs %v", pa, pb)
	}
}

// roundOnce is a helper driving one Round over a single host.
func roundOnce(e *Engine, now float64, latest map[string]telemetry.Reading, anchors map[string]float64) ([]Prediction, RoundStats) {
	order := make([]string, 0, len(latest))
	for id := range latest {
		order = append(order, id)
	}
	return e.Round(nil, now, order, latest, anchors)
}

// TestRoundCreatesAndCalibrates: the fleet-facing path — a reading plus an
// anchor yields a session and a Δ_gap-ahead prediction.
func TestRoundCreatesAndCalibrates(t *testing.T) {
	e := testEngine(t, nil)
	latest := map[string]telemetry.Reading{"h0": {HostID: "h0", AtS: 0, TempC: 25}}
	anchors := map[string]float64{"h0": 60}
	preds, st := roundOnce(e, 0, latest, anchors)
	if len(preds) != 1 || st.Live != 1 || st.Reanchored != 1 {
		t.Fatalf("preds %d live %d reanchored %d", len(preds), st.Live, st.Reanchored)
	}
	p := preds[0]
	if p.Stale || p.StalenessS != 0 {
		t.Fatalf("fresh reading marked stale: %+v", p)
	}
	if p.UncertaintyC != e.Config().UncertaintyBaseC {
		t.Fatalf("uncertainty %v, want base %v", p.UncertaintyC, e.Config().UncertaintyBaseC)
	}
	if e.Len() != 1 {
		t.Fatalf("sessions = %d, want 1", e.Len())
	}

	// A stable anchor within ε must NOT re-anchor.
	anchors["h0"] = 60.5
	latest["h0"] = telemetry.Reading{HostID: "h0", AtS: 15, TempC: 30}
	_, st = roundOnce(e, 15, latest, anchors)
	if st.Reanchored != 0 {
		t.Fatalf("re-anchored on %v°C drift within eps %v", 0.5, e.Config().ReanchorEpsC)
	}
	// Beyond ε the deployment changed: re-anchor.
	anchors["h0"] = 75
	latest["h0"] = telemetry.Reading{HostID: "h0", AtS: 30, TempC: 35}
	_, st = roundOnce(e, 30, latest, anchors)
	if st.Reanchored != 1 {
		t.Fatal("anchor moved beyond eps but session kept the old curve")
	}
}

// TestRoundStalenessWidensUncertainty: telemetry older than StaleAfterS
// degrades the host — prediction marked stale, uncertainty widened, and no
// calibration from the fossil reading.
func TestRoundStalenessWidensUncertainty(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.StaleAfterS = 45; c.EvictAfterS = 900 })
	latest := map[string]telemetry.Reading{"h0": {HostID: "h0", AtS: 0, TempC: 25}}
	anchors := map[string]float64{"h0": 60}
	preds, _ := roundOnce(e, 0, latest, anchors)
	fresh := preds[0]

	// 100 s later with no new telemetry: staleness 100 > 45.
	preds, st := roundOnce(e, 100, latest, anchors)
	if len(preds) != 1 {
		t.Fatalf("stale host lost its prediction entirely: %d preds", len(preds))
	}
	p := preds[0]
	if !p.Stale {
		t.Fatal("host with 100 s old telemetry not marked stale")
	}
	if p.StalenessS != 100 {
		t.Fatalf("staleness %v, want 100", p.StalenessS)
	}
	wantU := e.Config().UncertaintyBaseC + e.Config().UncertaintyPerSC*100
	if math.Abs(p.UncertaintyC-wantU) > 1e-9 {
		t.Fatalf("uncertainty %v, want %v", p.UncertaintyC, wantU)
	}
	if p.UncertaintyC <= fresh.UncertaintyC {
		t.Fatal("staleness did not widen uncertainty")
	}
	if st.MaxStalenessS != 100 {
		t.Fatalf("max staleness %v, want 100", st.MaxStalenessS)
	}
	if e.Len() != 1 {
		t.Fatal("stale (not evicted) session must survive")
	}
}

// TestRoundEvictsDarkHosts: telemetry older than EvictAfterS removes the
// session AND the fossil reading, so dead hosts do not accumulate.
func TestRoundEvictsDarkHosts(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.StaleAfterS = 45; c.EvictAfterS = 120 })
	latest := map[string]telemetry.Reading{
		"dark":  {HostID: "dark", AtS: 0, TempC: 25},
		"alive": {HostID: "alive", AtS: 0, TempC: 25},
	}
	anchors := map[string]float64{"dark": 60, "alive": 60}
	_, st := roundOnce(e, 0, latest, anchors)
	if st.Evicted != 0 || e.Len() != 2 {
		t.Fatalf("premature eviction: %+v len %d", st, e.Len())
	}

	// The live host keeps reporting; the dark one stays at t=0.
	latest["alive"] = telemetry.Reading{HostID: "alive", AtS: 150, TempC: 30}
	preds, st := roundOnce(e, 150, latest, anchors)
	if st.Evicted != 1 {
		t.Fatalf("evicted = %d, want 1", st.Evicted)
	}
	if e.Len() != 1 {
		t.Fatalf("sessions after eviction = %d, want 1", e.Len())
	}
	if _, ok := latest["dark"]; ok {
		t.Fatal("evicted host's reading must be forgotten")
	}
	if len(preds) != 1 || preds[0].HostID != "alive" {
		t.Fatalf("surviving predictions wrong: %+v", preds)
	}
	// Re-running must not double-count.
	if _, st := roundOnce(e, 165, latest, anchors); st.Evicted != 0 {
		t.Fatal("eviction re-counted for an already-forgotten host")
	}
}

// TestRoundClampsFutureTimestamps: a clock-skewed reading from the future
// must not produce negative staleness.
func TestRoundClampsFutureTimestamps(t *testing.T) {
	e := testEngine(t, nil)
	latest := map[string]telemetry.Reading{"h0": {HostID: "h0", AtS: 500, TempC: 25}}
	anchors := map[string]float64{"h0": 60}
	preds, st := roundOnce(e, 100, latest, anchors)
	if len(preds) != 1 {
		t.Fatal("future-stamped host lost its prediction")
	}
	if preds[0].StalenessS < 0 || st.MaxStalenessS < 0 {
		t.Fatalf("negative staleness leaked: %+v", preds[0])
	}
	if preds[0].UncertaintyC < e.Config().UncertaintyBaseC {
		t.Fatal("uncertainty below base")
	}
}

// TestRoundAnchorFailureIsCounted: a NaN anchor must not create a session,
// and the blindness must be visible in the stats.
func TestRoundAnchorFailureIsCounted(t *testing.T) {
	e := testEngine(t, nil)
	latest := map[string]telemetry.Reading{"h0": {HostID: "h0", AtS: 0, TempC: 25}}
	anchors := map[string]float64{"h0": math.NaN()}
	preds, st := roundOnce(e, 0, latest, anchors)
	if len(preds) != 0 {
		t.Fatalf("NaN anchor produced a prediction: %+v", preds)
	}
	if st.AnchorFailures != 1 {
		t.Fatalf("anchor failures = %d, want 1", st.AnchorFailures)
	}
	if e.Len() != 0 {
		t.Fatal("NaN anchor created a session")
	}

	// A previously healthy session survives a later bad anchor.
	anchors["h0"] = 60
	if _, st := roundOnce(e, 0, latest, anchors); st.Reanchored != 1 {
		t.Fatalf("recovery re-anchor missing: %+v", st)
	}
	anchors["h0"] = math.NaN()
	preds, st = roundOnce(e, 15, latest, anchors)
	if len(preds) != 1 || st.AnchorFailures != 0 {
		t.Fatalf("healthy session dropped on bad re-anchor: preds %d stats %+v", len(preds), st)
	}
}

// TestRoundSkipsUnobservedHosts: no reading means no session and no
// prediction — never a fabricated one.
func TestRoundSkipsUnobservedHosts(t *testing.T) {
	e := testEngine(t, nil)
	preds, st := e.Round(nil, 0, []string{"h0", "h1"},
		map[string]telemetry.Reading{"h1": {HostID: "h1", TempC: 25}},
		map[string]float64{"h0": 60, "h1": 60})
	if len(preds) != 1 || preds[0].HostID != "h1" {
		t.Fatalf("preds = %+v", preds)
	}
	if st.Live != 1 {
		t.Fatalf("live = %d", st.Live)
	}
}

// TestRoundZeroAllocSteadyState: after the first round builds the sessions,
// subsequent rounds over an unchanged population must not allocate — the
// hot-path contract the fleet benchmark leans on.
func TestRoundZeroAllocSteadyState(t *testing.T) {
	e := testEngine(t, nil)
	const hosts = 64
	order := make([]string, hosts)
	latest := make(map[string]telemetry.Reading, hosts)
	anchors := make(map[string]float64, hosts)
	for i := range order {
		id := fmt.Sprintf("h%03d", i)
		order[i] = id
		latest[id] = telemetry.Reading{HostID: id, AtS: 0, TempC: 25}
		anchors[id] = 60
	}
	dst, _ := e.Round(nil, 0, order, latest, anchors)

	now := 0.0
	allocs := testing.AllocsPerRun(20, func() {
		now += 15
		for _, id := range order {
			latest[id] = telemetry.Reading{HostID: id, AtS: now, TempC: 30}
		}
		dst, _ = e.Round(dst[:0], now, order, latest, anchors)
	})
	if allocs > 0 {
		t.Fatalf("steady-state round allocates %.1f times", allocs)
	}
	if len(dst) != hosts {
		t.Fatalf("round lost predictions: %d of %d", len(dst), hosts)
	}
}

// TestEngineConcurrentLifecycle hammers the sharded engine directly:
// goroutines concurrently create, observe, predict and delete sessions
// while a round loop runs over a disjoint host population. Run under -race
// (CI does) this is the striped-locking correctness test, migrated from the
// predictserver session store it replaced.
func TestEngineConcurrentLifecycle(t *testing.T) {
	e := testEngine(t, nil)

	stopRounds := make(chan struct{})
	var roundWG sync.WaitGroup
	roundWG.Add(1)
	go func() {
		defer roundWG.Done()
		order := []string{"fleet-a", "fleet-b"}
		latest := map[string]telemetry.Reading{
			"fleet-a": {HostID: "fleet-a", TempC: 25},
			"fleet-b": {HostID: "fleet-b", TempC: 30},
		}
		anchors := map[string]float64{"fleet-a": 55, "fleet-b": 65}
		var dst []Prediction
		now := 0.0
		for {
			select {
			case <-stopRounds:
				return
			default:
			}
			now += 15
			latest["fleet-a"] = telemetry.Reading{HostID: "fleet-a", AtS: now, TempC: 25}
			latest["fleet-b"] = telemetry.Reading{HostID: "fleet-b", AtS: now, TempC: 30}
			dst, _ = e.Round(dst[:0], now, order, latest, anchors)
		}
	}()

	const workers = 16
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]string, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				id := e.NewID()
				if err := e.Create(id, SessionParams{Phi0: 20, StableC: 60}); err != nil {
					t.Error(err)
					return
				}
				ids = append(ids, id)
				if _, err := e.Observe(id, float64(i), 25+float64(i%10)); err != nil {
					t.Errorf("worker %d: observe %s: %v", w, id, err)
					return
				}
				if _, _, err := e.Predict(id, float64(i)); err != nil {
					t.Errorf("worker %d: predict %s: %v", w, id, err)
					return
				}
				// Interleave deletes of every other session.
				if i%2 == 1 {
					prev := ids[len(ids)-2]
					if !e.Delete(prev) {
						t.Errorf("worker %d: delete %s failed", w, prev)
						return
					}
					if _, _, err := e.Predict(prev, 0); !errors.Is(err, ErrNoSession) {
						t.Errorf("worker %d: deleted %s still predicts", w, prev)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopRounds)
	roundWG.Wait()

	want := workers*perWorker/2 + 2 // surviving service sessions + 2 fleet hosts
	if got := e.Len(); got != want {
		t.Errorf("engine len = %d, want %d", got, want)
	}
}

// TestShardedRoundMatchesSerial: with RoundWorkers > 1 and a >= 1024-host
// population, the sharded round must produce exactly the serial round's
// predictions (same order), stats, surviving sessions and latest map —
// across multiple rounds including staleness degradation and evictions.
func TestShardedRoundMatchesSerial(t *testing.T) {
	const hosts = 2048
	run := func(workers int) ([][]Prediction, []RoundStats, int, int) {
		e := testEngine(t, func(c *Config) { c.RoundWorkers = workers })
		order := make([]string, hosts)
		latest := make(map[string]telemetry.Reading, hosts)
		anchors := make(map[string]float64, hosts)
		for i := range order {
			id := fmt.Sprintf("p%02d-h%04d", i/128, i%128)
			order[i] = id
			latest[id] = telemetry.Reading{HostID: id, AtS: 0, TempC: 25 + float64(i%30)}
			anchors[id] = 40 + float64(i%40)
		}
		var allPreds [][]Prediction
		var allStats []RoundStats
		now := 0.0
		for round := 0; round < 8; round++ {
			now += 200 // large steps: some hosts go stale, then evict
			for i, id := range order {
				// Starve one host in three after round 2 (stale → evicted);
				// move anchors on a stripe to force re-anchors.
				if round < 3 || i%3 != 0 {
					r := latest[id]
					r.AtS = now
					r.TempC = 25 + float64((round+i)%30)
					latest[id] = r
				}
				if round == 4 && i%5 == 0 {
					anchors[id] += 10
				}
			}
			preds, st := e.Round(nil, now, order, latest, anchors)
			allPreds = append(allPreds, preds)
			allStats = append(allStats, st)
		}
		return allPreds, allStats, e.Len(), len(latest)
	}

	sp, ss, slen, slat := run(1)
	pp, ps, plen, plat := run(8)
	if slen != plen || slat != plat {
		t.Fatalf("population diverged: sessions %d vs %d, latest %d vs %d", slen, plen, slat, plat)
	}
	for round := range sp {
		if ss[round] != ps[round] {
			t.Fatalf("round %d stats diverged: serial %+v, sharded %+v", round, ss[round], ps[round])
		}
		if len(sp[round]) != len(pp[round]) {
			t.Fatalf("round %d produced %d vs %d predictions", round, len(sp[round]), len(pp[round]))
		}
		for i := range sp[round] {
			if sp[round][i] != pp[round][i] {
				t.Fatalf("round %d prediction %d diverged: %+v vs %+v",
					round, i, sp[round][i], pp[round][i])
			}
		}
	}
	// The scenario must exercise all lifecycle paths, or the check is weak.
	var evicted, reanchored, stale int
	for round := range ss {
		evicted += ss[round].Evicted
		reanchored += ss[round].Reanchored
		for _, p := range sp[round] {
			if p.Stale {
				stale++
			}
		}
	}
	if evicted == 0 || reanchored == 0 || stale == 0 {
		t.Fatalf("scenario too tame: evicted %d, reanchored %d, stale %d", evicted, reanchored, stale)
	}
}

// TestShardedRoundSmallPopulationStaysSerial: below the gate the sharded
// configuration must keep the serial path's zero-allocation contract.
func TestShardedRoundSmallPopulationStaysSerial(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.RoundWorkers = 8 })
	const hosts = 256
	order := make([]string, hosts)
	latest := make(map[string]telemetry.Reading, hosts)
	anchors := make(map[string]float64, hosts)
	for i := range order {
		id := fmt.Sprintf("h%04d", i)
		order[i] = id
		latest[id] = telemetry.Reading{HostID: id, AtS: 0, TempC: 30}
		anchors[id] = 50
	}
	dst, _ := e.Round(nil, 0, order, latest, anchors)
	now := 0.0
	allocs := testing.AllocsPerRun(50, func() {
		now += 15
		for _, id := range order {
			r := latest[id]
			r.AtS = now
			latest[id] = r
		}
		dst, _ = e.Round(dst[:0], now, order, latest, anchors)
	})
	if allocs != 0 {
		t.Fatalf("small-population round with RoundWorkers=8 allocates %.1f/op, want 0", allocs)
	}
}
