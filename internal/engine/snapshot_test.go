package engine

import (
	"math"
	"testing"
)

// buildWarmEngine creates an engine with a few sessions that have observed
// telemetry (non-trivial γ, staleness clocks, update gating state).
func buildWarmEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(Config{UpdateEveryS: 15, GapS: 60})
	if err != nil {
		t.Fatal(err)
	}
	hosts := []struct {
		id             string
		phi0, stable   float64
		obs            []float64 // temperatures observed at 15s intervals
		anchorAt, gapS float64
	}{
		{"r0-h0", 35, 72, []float64{40, 48, 55, 61}, 0, 0},
		{"r0-h1", 33, 55, []float64{34, 36, 39}, 30, 0},
		{"r1-h0", 40, 80, []float64{45, 52}, 15, 120}, // per-session GapS override
	}
	for _, h := range hosts {
		if err := e.Create(h.id, SessionParams{
			Phi0: h.phi0, StableC: h.stable, AnchorAtS: h.anchorAt, GapS: h.gapS,
		}); err != nil {
			t.Fatal(err)
		}
		for i, temp := range h.obs {
			if _, err := e.Observe(h.id, h.anchorAt+float64(i+1)*15, temp); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Burn a few service ids so NextID is non-trivial.
	e.NewID()
	e.NewID()
	return e
}

// TestSnapshotRestoreRoundTrip: a restored engine must predict and calibrate
// bit-identically to the original from the capture point on.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	orig := buildWarmEngine(t)
	st := orig.Snapshot()
	if len(st.Sessions) != 3 {
		t.Fatalf("snapshot carries %d sessions, want 3", len(st.Sessions))
	}
	for i := 1; i < len(st.Sessions); i++ {
		if st.Sessions[i].ID <= st.Sessions[i-1].ID {
			t.Fatalf("snapshot sessions not sorted: %q after %q", st.Sessions[i].ID, st.Sessions[i-1].ID)
		}
	}

	restored, err := New(Config{UpdateEveryS: 15, GapS: 60})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(st); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != orig.Len() {
		t.Fatalf("restored %d sessions, want %d", restored.Len(), orig.Len())
	}
	if got, want := restored.NewID(), orig.NewID(); got != want {
		t.Fatalf("restored NewID %q, want %q (counter must continue)", got, want)
	}

	// Identical future: observe and predict on both, compare exact bits.
	for _, id := range []string{"r0-h0", "r0-h1", "r1-h0"} {
		for _, step := range []struct{ at, temp float64 }{
			{75, 63.5}, {80, 64.0}, {90, 64.8}, // 80 lands inside the Δ_update gate
		} {
			g1, err1 := orig.Observe(id, step.at, step.temp)
			g2, err2 := restored.Observe(id, step.at, step.temp)
			if err1 != nil || err2 != nil {
				t.Fatalf("observe %s: %v / %v", id, err1, err2)
			}
			if g1 != g2 {
				t.Fatalf("%s: γ diverged after restore: %v vs %v", id, g1, g2)
			}
			p1, _, _ := orig.Predict(id, step.at)
			p2, _, _ := restored.Predict(id, step.at)
			if p1 != p2 {
				t.Fatalf("%s: prediction diverged after restore: %v vs %v", id, p1, p2)
			}
		}
		s1, _ := orig.Stable(id)
		s2, _ := restored.Stable(id)
		if s1 != s2 {
			t.Fatalf("%s: ψ_stable diverged: %v vs %v", id, s1, s2)
		}
	}
}

// TestRestoreReplacesPopulation: restore over a non-empty engine must not
// leak pre-existing sessions.
func TestRestoreReplacesPopulation(t *testing.T) {
	st := buildWarmEngine(t).Snapshot()
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Create("stray", SessionParams{Phi0: 30, StableC: 50}); err != nil {
		t.Fatal(err)
	}
	if err := e.Restore(st); err != nil {
		t.Fatal(err)
	}
	if e.Len() != len(st.Sessions) {
		t.Fatalf("restored population %d, want %d", e.Len(), len(st.Sessions))
	}
	if _, _, err := e.Predict("stray", 0); err == nil {
		t.Fatal("pre-restore session survived Restore")
	}
}

// TestRestoreRejectsBadState: invalid states error and leave the engine
// empty, never half-restored or panicking.
func TestRestoreRejectsBadState(t *testing.T) {
	good := buildWarmEngine(t).Snapshot()

	cases := map[string]func(State) State{
		"empty id": func(s State) State {
			s.Sessions[0].ID = ""
			return s
		},
		"duplicate id": func(s State) State {
			s.Sessions[1].ID = s.Sessions[0].ID
			return s
		},
		"bad lambda": func(s State) State {
			s.Sessions[0].Predictor.Config.Lambda = 2
			return s
		},
		"bad curve": func(s State) State {
			s.Sessions[0].Predictor.Curve.TBreakS = math.NaN()
			return s
		},
		"negative updates": func(s State) State {
			s.Sessions[0].Predictor.Updates = -1
			return s
		},
	}
	for name, mutate := range cases {
		e, err := New(Config{})
		if err != nil {
			t.Fatal(err)
		}
		// Deep-enough copy: sessions slice is the only shared mutable part.
		cp := good
		cp.Sessions = append([]SessionState(nil), good.Sessions...)
		if err := e.Restore(mutate(cp)); err == nil {
			t.Errorf("%s: Restore accepted invalid state", name)
		}
	}
}
