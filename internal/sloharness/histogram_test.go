package sloharness

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// oracle returns the exact quantile of samples the way the histogram
// defines it: the sample at 0-based rank ⌊p·(n−1)⌋ of the sorted slice.
func oracle(samples []time.Duration, p float64) time.Duration {
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[int(p*float64(len(sorted)-1))]
}

// drawSamples generates one of several latency shapes: uniform, bimodal
// (fast path + slow tail), exponential-ish heavy tail, and constant.
func drawSamples(r *rand.Rand, shape, n int, span time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		switch shape {
		case 0: // uniform
			out[i] = time.Duration(r.Int63n(int64(span)))
		case 1: // bimodal: 90% fast, 10% ~10× slower
			if r.Float64() < 0.9 {
				out[i] = time.Duration(r.Int63n(int64(span / 10)))
			} else {
				out[i] = span/2 + time.Duration(r.Int63n(int64(span/2)))
			}
		case 2: // heavy tail
			d := time.Duration(float64(span) / 20 * r.ExpFloat64())
			if d > 2*span {
				d = 2 * span // may overflow the bucket range on purpose
			}
			out[i] = d
		default: // constant
			out[i] = span / 3
		}
	}
	return out
}

// TestQuantileMatchesOracle is the property test the tentpole requires:
// across shapes, sizes and quantiles, the histogram answer is within one
// bucket width above the sorted-slice oracle (never below it), except for
// overflowed samples where the histogram answers the exact max.
func TestQuantileMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	width := 50 * time.Microsecond
	buckets := 2000 // covers [0, 100ms)
	span := 80 * time.Millisecond
	quantiles := []float64{0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999, 1.0}

	for shape := 0; shape < 4; shape++ {
		for _, n := range []int{1, 2, 17, 500, 20000} {
			samples := drawSamples(r, shape, n, span)
			h := NewHistogram(width, buckets)
			for _, s := range samples {
				h.Record(s)
			}
			for _, p := range quantiles {
				got := h.Quantile(p)
				want := oracle(samples, p)
				if want >= time.Duration(buckets)*width {
					// Overflowed rank: the histogram reports its exact max,
					// an upper bound on the true quantile.
					if got != h.Max() {
						t.Fatalf("shape=%d n=%d p=%v: overflow rank answered %v, want max %v", shape, n, p, got, h.Max())
					}
					continue
				}
				if got < want || got-want > width {
					t.Fatalf("shape=%d n=%d p=%v: histogram %v vs oracle %v (width %v)", shape, n, p, got, want, width)
				}
			}
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	h := NewHistogram(100*time.Microsecond, 1000)
	for _, s := range drawSamples(r, 2, 5000, 40*time.Millisecond) {
		h.Record(s)
	}
	prev := time.Duration(-1)
	for p := 0.0; p <= 1.0; p += 0.001 {
		q := h.Quantile(p)
		if q < prev {
			t.Fatalf("quantile not monotone: Q(%v)=%v < previous %v", p, q, prev)
		}
		prev = q
	}
}

func TestHistogramMergeEquivalentToSingle(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	samples := drawSamples(r, 1, 4096, 20*time.Millisecond)
	single := NewHistogram(50*time.Microsecond, 1000)
	parts := []*Histogram{
		NewHistogram(50*time.Microsecond, 1000),
		NewHistogram(50*time.Microsecond, 1000),
		NewHistogram(50*time.Microsecond, 1000),
	}
	for i, s := range samples {
		single.Record(s)
		parts[i%len(parts)].Record(s)
	}
	merged := parts[0]
	merged.Merge(parts[1])
	merged.Merge(parts[2])
	if merged.Count() != single.Count() || merged.Max() != single.Max() {
		t.Fatalf("merge lost samples: count %d vs %d, max %v vs %v",
			merged.Count(), single.Count(), merged.Max(), single.Max())
	}
	for _, p := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if merged.Quantile(p) != single.Quantile(p) {
			t.Fatalf("p%v: merged %v != single %v", p*100, merged.Quantile(p), single.Quantile(p))
		}
	}
}

func TestHistogramEmptyAndBounds(t *testing.T) {
	h := NewHistogram(time.Millisecond, 10)
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram must answer 0")
	}
	h.Record(-5 * time.Millisecond) // clamps to bucket 0
	h.Record(500 * time.Millisecond)
	if h.Count() != 2 {
		t.Fatalf("count %d, want 2", h.Count())
	}
	if h.Quantile(1) != 500*time.Millisecond {
		t.Fatalf("overflowed max quantile %v, want exact 500ms", h.Quantile(1))
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset did not clear the histogram")
	}
}

// TestRecordZeroAlloc pins the zero-alloc hot path.
func TestRecordZeroAlloc(t *testing.T) {
	h := NewHistogram(50*time.Microsecond, 1000)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(3 * time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v/op, want 0", allocs)
	}
}
