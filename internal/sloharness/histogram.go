// Package sloharness is a closed-loop, SLO-driven serving-capacity profiler
// for the vmtherm HTTP endpoints. Modeled on the vHive profiling loader, it
// steps the offered request rate up through warm-up → measure → cool-down
// phases, records latency into a fixed-bucket histogram, and reports the
// maximum RPS the target sustains without violating a declared tail-latency
// SLO (e.g. p99 ≤ 5 ms) — turning "fast as the hardware allows" into a
// measured, regression-gated number per endpoint × knob combination.
package sloharness

import "time"

// Histogram is a fixed-bucket latency histogram. Bucket i covers
// [i·Width, (i+1)·Width); samples at or beyond Buckets·Width land in an
// overflow bucket that additionally tracks the exact maximum. Record is
// allocation-free, so per-sender histograms can sit on the measurement hot
// path; Merge combines them after a step.
//
// Quantile is exact to within one bucket width against a sorted-slice
// oracle (property-tested): both pick the sample at 0-based rank
// ⌊p·(n−1)⌋, the histogram just answers with its bucket's upper edge.
type Histogram struct {
	width    time.Duration
	buckets  []uint64
	count    uint64
	overflow uint64
	max      time.Duration
}

// DefaultHistWidth and DefaultHistBuckets cover [0, 2 s) at 100 µs
// resolution — comfortably finer than any SLO limit worth declaring for an
// in-memory prediction service, in 160 KiB per sender.
const (
	DefaultHistWidth   = 100 * time.Microsecond
	DefaultHistBuckets = 20000
)

// NewHistogram creates a histogram with n buckets of the given width.
func NewHistogram(width time.Duration, n int) *Histogram {
	if width <= 0 {
		width = DefaultHistWidth
	}
	if n <= 0 {
		n = DefaultHistBuckets
	}
	return &Histogram{width: width, buckets: make([]uint64, n)}
}

// Record adds one latency sample. Negative samples count as zero.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if d > h.max {
		h.max = d
	}
	idx := int(d / h.width)
	if idx >= len(h.buckets) {
		h.overflow++
	} else {
		h.buckets[idx]++
	}
	h.count++
}

// Merge folds o into h. Both must share width and bucket count.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.overflow += o.overflow
	h.count += o.count
	if o.max > h.max {
		h.max = o.max
	}
}

// Count reports recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Max reports the largest recorded sample exactly.
func (h *Histogram) Max() time.Duration { return h.max }

// Reset zeroes the histogram for reuse without reallocating.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.count, h.overflow, h.max = 0, 0, 0
}

// Quantile returns the latency at quantile p ∈ [0, 1] as the upper edge of
// the bucket holding the sample at 0-based rank ⌊p·(n−1)⌋ — the same rank a
// sorted-slice oracle indexes, so the answer exceeds the oracle's by less
// than one bucket width and never undershoots it. Samples that overflowed
// the bucket range answer with the exact recorded maximum. An empty
// histogram answers 0.
func (h *Histogram) Quantile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(p * float64(h.count-1)) // 0-based index into the sorted samples
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum > rank {
			return time.Duration(i+1) * h.width
		}
	}
	return h.max
}
