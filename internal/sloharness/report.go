package sloharness

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Report is the machine-readable output of one harness invocation
// (capacity.json / BENCH_SLO.json): every profiled endpoint × knob
// combination with its full step table.
type Report struct {
	// GeneratedAt is RFC 3339 UTC; Host describes the profiled service
	// ("in-process" or a base URL).
	GeneratedAt string     `json:"generated_at"`
	Host        string     `json:"host"`
	Profiles    []*Profile `json:"profiles"`
}

// NewReport stamps a report for the given host description.
func NewReport(host string) *Report {
	return &Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Host:        host,
	}
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseReport reads a report written by WriteJSON (the CI regression gate
// compares a fresh report against a committed baseline).
func ParseReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("sloharness: parsing report: %w", err)
	}
	return &r, nil
}

// Capacity returns the profile matching endpoint and knobs exactly, or nil.
// Knob maps match when they contain the same pairs.
func (r *Report) Capacity(endpoint string, knobs map[string]string) *Profile {
	for _, p := range r.Profiles {
		if p.Endpoint != endpoint || len(p.Knobs) != len(knobs) {
			continue
		}
		same := true
		for k, v := range knobs {
			if p.Knobs[k] != v {
				same = false
				break
			}
		}
		if same {
			return p
		}
	}
	return nil
}

// knobString renders knobs deterministically ("batch=64 budget=5").
func knobString(knobs map[string]string) string {
	if len(knobs) == 0 {
		return "—"
	}
	keys := make([]string, 0, len(knobs))
	for k := range knobs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += k + "=" + knobs[k]
	}
	return s
}

// WriteMarkdown renders the human CAPACITY.md report: a summary table of
// max sustainable rates, then one SLO step table per profile. The layout is
// stable so regenerated reports diff cleanly.
func (r *Report) WriteMarkdown(w io.Writer) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pf("# Measured serving capacity\n\n")
	pf("Generated %s against %s by `vmtherm-loadgen -mode slo`.\n\n", r.GeneratedAt, r.Host)
	pf("Max sustainable RPS is the highest offered rate whose measured window\n")
	pf("satisfied the declared SLO (tail latency at the quantile, error rate\n")
	pf("≤ 1%%, achieved ≥ 90%% of offered). See docs/CAPACITY.md for how to\n")
	pf("read and regenerate this report.\n\n")

	pf("| endpoint | knobs | SLO | max sustainable RPS | items/s |\n")
	pf("|---|---|---|---:|---:|\n")
	for _, p := range r.Profiles {
		pf("| `%s` | %s | %s | %s%.0f | %s%.0f |\n",
			p.Endpoint, knobString(p.Knobs), p.SLOLabel,
			ceilMark(p), p.MaxSustainableRPS, ceilMark(p), p.MaxSustainableItemsPerSec)
	}
	pf("\n")

	for _, p := range r.Profiles {
		pf("## `%s` (%s, SLO %s)\n\n", p.Endpoint, knobString(p.Knobs), p.SLOLabel)
		pf("| offered RPS | achieved | p50 ms | p90 ms | p99 ms | max ms | errors | verdict |\n")
		pf("|---:|---:|---:|---:|---:|---:|---:|---|\n")
		for _, s := range p.Steps {
			verdict := "ok"
			if !s.Sustainable {
				verdict = "VIOLATED (" + s.Violation + ")"
			}
			if s.Refining {
				verdict += " ·refine"
			}
			pf("| %.0f | %.0f | %.2f | %.2f | %.2f | %.2f | %d | %s |\n",
				s.TargetRPS, s.AchievedRPS, s.P50Ms, s.P90Ms, s.P99Ms, s.MaxMs, s.Errors, verdict)
		}
		pf("\n**max sustainable: %s%.0f req/s (%s%.0f items/s)**\n\n",
			ceilMark(p), p.MaxSustainableRPS, ceilMark(p), p.MaxSustainableItemsPerSec)
	}
	return err
}

// ceilMark prefixes "≥ " when the ramp exhausted its ceiling without a
// violation — the number is a floor, not a measured knee.
func ceilMark(p *Profile) string {
	if p.HitCeiling {
		return "≥ "
	}
	return ""
}
