package sloharness

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// kneeTarget is the synthetic latency model the tentpole requires: fast
// below a known RPS knee, slow above it. Rate-awareness stands in for the
// queueing collapse a real saturated server exhibits.
type kneeTarget struct {
	kneeRPS    float64
	fast, slow time.Duration
	rate       atomic.Uint64
}

func (k *kneeTarget) Name() string        { return "synthetic-knee" }
func (k *kneeTarget) SetRate(rps float64) { k.rate.Store(math.Float64bits(rps)) }

func (k *kneeTarget) Fire(context.Context) error {
	d := k.fast
	if math.Float64frombits(k.rate.Load()) > k.kneeRPS {
		d = k.slow
	}
	time.Sleep(d)
	return nil
}

// TestStepControllerFindsKnee: with a knee at 500 RPS, a 64→2048 geometric
// ramp brackets it at [256, 512] and three bisection steps tighten the
// bracket to 32 RPS — the harness must converge to within that final step.
func TestStepControllerFindsKnee(t *testing.T) {
	target := &kneeTarget{kneeRPS: 500, fast: 100 * time.Microsecond, slow: 50 * time.Millisecond}
	cfg := Config{
		SLO:      SLO{Quantile: 0.99, Limit: 10 * time.Millisecond},
		StartRPS: 64, MaxRPS: 2048, Growth: 2, Refine: 3,
		Warmup: 30 * time.Millisecond, Measure: 200 * time.Millisecond, Cooldown: 20 * time.Millisecond,
		Senders: 64,
		// Low-rate steps see only ~a dozen completions in the short test
		// window; loosen the throughput gate so discretization noise cannot
		// mask the latency knee this test is about.
		MinAchievedFrac: 0.75,
	}
	p, err := Run(context.Background(), cfg, target)
	if err != nil {
		t.Fatal(err)
	}
	// Ramp 64, 128, 256 sustain; 512 violates; bisection refines in (256, 512).
	finalStep := (512.0 - 256.0) / 8 // (Growth−1)·lastGood / 2^Refine
	if p.MaxSustainableRPS > target.kneeRPS {
		t.Fatalf("reported capacity %.0f exceeds the knee %.0f", p.MaxSustainableRPS, target.kneeRPS)
	}
	if gap := target.kneeRPS - p.MaxSustainableRPS; gap > finalStep {
		t.Fatalf("capacity %.0f is %.0f below the knee — not within one %.0f-RPS step",
			p.MaxSustainableRPS, gap, finalStep)
	}
	if len(p.Steps) != 4+cfg.Refine {
		t.Fatalf("recorded %d steps, want 4 ramp + %d refine", len(p.Steps), cfg.Refine)
	}
	for i, s := range p.Steps[:3] {
		if !s.Sustainable {
			t.Fatalf("ramp step %d (%.0f RPS) unexpectedly violated: %s", i, s.TargetRPS, s.Violation)
		}
	}
	if s := p.Steps[3]; s.Sustainable || s.Violation != "latency" {
		t.Fatalf("step at 512 RPS: sustainable=%v violation=%q, want latency violation", s.Sustainable, s.Violation)
	}
	for _, s := range p.Steps[4:] {
		if !s.Refining {
			t.Fatalf("post-bracket step at %.0f RPS not marked refining", s.TargetRPS)
		}
	}
	if p.Endpoint != "synthetic-knee" || p.SLOLabel == "" {
		t.Fatalf("profile metadata not populated: %+v", p)
	}
}

// fixedCapacityTarget models a server whose concurrency × service time caps
// throughput: latency stays flat, but offered load beyond the capacity
// cannot be achieved — the throughput gate must catch it.
type fixedCapacityTarget struct{ service time.Duration }

func (f *fixedCapacityTarget) Name() string { return "fixed-capacity" }
func (f *fixedCapacityTarget) Fire(context.Context) error {
	time.Sleep(f.service)
	return nil
}

func TestThroughputShortfallViolates(t *testing.T) {
	// 2 senders × 20 ms service ⇒ 100 RPS capacity. The latency SLO is
	// deliberately loose so only the achieved-throughput gate can fail.
	target := &fixedCapacityTarget{service: 20 * time.Millisecond}
	cfg := Config{
		SLO:      SLO{Quantile: 0.99, Limit: time.Second},
		StartRPS: 16, MaxRPS: 1024, Growth: 4, Refine: 1,
		Warmup: 60 * time.Millisecond, Measure: 400 * time.Millisecond, Cooldown: 20 * time.Millisecond,
		Senders: 2,
	}
	p, err := Run(context.Background(), cfg, target)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxSustainableRPS != 64 {
		t.Fatalf("capacity %.0f, want 64 (last offered rate under the 100 RPS ceiling)", p.MaxSustainableRPS)
	}
	var sawThroughput bool
	for _, s := range p.Steps {
		if !s.Sustainable {
			if s.Violation != "throughput" {
				t.Fatalf("step %.0f violated %q, want throughput", s.TargetRPS, s.Violation)
			}
			sawThroughput = true
		}
	}
	if !sawThroughput {
		t.Fatal("no step hit the throughput gate")
	}
}

type erroringTarget struct{}

func (erroringTarget) Name() string               { return "erroring" }
func (erroringTarget) Fire(context.Context) error { return context.DeadlineExceeded }

func TestAllErrorsMeansZeroCapacity(t *testing.T) {
	cfg := Config{
		SLO:      SLO{Quantile: 0.99, Limit: time.Second},
		StartRPS: 50, MaxRPS: 200, Growth: 2, Refine: 2,
		Warmup: 10 * time.Millisecond, Measure: 100 * time.Millisecond, Cooldown: 10 * time.Millisecond,
		Senders: 4,
	}
	p, err := Run(context.Background(), cfg, erroringTarget{})
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxSustainableRPS != 0 {
		t.Fatalf("capacity %.0f for an always-erroring target, want 0", p.MaxSustainableRPS)
	}
	if len(p.Steps) != 1 || p.Steps[0].Violation != "errors" {
		t.Fatalf("steps %+v, want a single errors-violating step (no refinement without a sustainable bracket)", p.Steps)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{SLO: SLO{Quantile: 1.5, Limit: time.Millisecond}},
		{SLO: SLO{Quantile: 0.99, Limit: time.Millisecond}, StartRPS: 100, MaxRPS: 50},
		{SLO: SLO{Quantile: 0.99, Limit: time.Millisecond}, Growth: 0.5},
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg, erroringTarget{}); err == nil {
			t.Fatalf("config %d accepted, want validation error", i)
		}
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{
		SLO:      SLO{Quantile: 0.99, Limit: time.Second},
		StartRPS: 10, MaxRPS: 20, Growth: 2,
		Warmup: 10 * time.Millisecond, Measure: 50 * time.Millisecond, Cooldown: 10 * time.Millisecond,
		Senders: 2,
	}
	if _, err := Run(ctx, cfg, &fixedCapacityTarget{service: time.Millisecond}); err == nil {
		t.Fatal("cancelled run returned no error")
	}
}

// TestArrivalSchedules: randomized schedules must be nondecreasing, hit the
// configured mean rate, and replay identically for the same seed and rate.
func TestArrivalSchedules(t *testing.T) {
	const rps = 1000.0
	interval := float64(time.Second) / rps
	for _, mode := range []string{ArrivalsPoisson, ArrivalsUniform} {
		cfg := Config{Arrivals: mode, ArrivalSeed: 7}
		next := arrivalSchedule(cfg, rps)
		replay := arrivalSchedule(cfg, rps)
		const n = 20000
		var prev, last time.Duration
		for i := 0; i < n; i++ {
			at := next(i)
			if at < prev {
				t.Fatalf("%s: offset %v at i=%d went backwards from %v", mode, at, i, prev)
			}
			if r := replay(i); r != at {
				t.Fatalf("%s: schedule not deterministic at i=%d: %v vs %v", mode, i, at, r)
			}
			prev, last = at, at
		}
		mean := float64(last) / n
		if mean < 0.9*interval || mean > 1.1*interval {
			t.Fatalf("%s: mean gap %v, want ≈%v", mode, time.Duration(mean), time.Duration(interval))
		}
	}
	// Fixed stays exact.
	next := arrivalSchedule(Config{Arrivals: ArrivalsFixed}, rps)
	if next(10) != 10*time.Duration(interval) {
		t.Fatalf("fixed schedule drifted: %v", next(10))
	}
}

func TestRunRejectsBadArrivals(t *testing.T) {
	_, err := Run(context.Background(), Config{Arrivals: "bursty"}, &fixedCapacityTarget{})
	if err == nil {
		t.Fatal("unknown arrival schedule accepted")
	}
}

// TestPoissonArrivalsRun: a whole profiling run under Poisson dispatch
// still finds capacity on a fast target.
func TestPoissonArrivalsRun(t *testing.T) {
	cfg := Config{
		SLO:      SLO{Quantile: 0.99, Limit: 50 * time.Millisecond},
		StartRPS: 64, MaxRPS: 256, Growth: 2, Refine: 1,
		Warmup: 50 * time.Millisecond, Measure: 300 * time.Millisecond, Cooldown: 50 * time.Millisecond,
		Senders:  8,
		Arrivals: ArrivalsPoisson,
	}
	p, err := Run(context.Background(), cfg, &fixedCapacityTarget{service: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxSustainableRPS < 64 {
		t.Fatalf("fast target unsustainable under poisson arrivals: %+v", p)
	}
}
