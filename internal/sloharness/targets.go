package sloharness

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"vmtherm/internal/predictclient"
	"vmtherm/internal/predictserver"
)

// The four serving endpoints the harness profiles. Target names double as
// the endpoint column of capacity reports, so they are the route paths.
const (
	EndpointStableBatch = "/v1/stable/batch"
	EndpointIngest      = "/v1/fleet/ingest"
	EndpointHotspots    = "/v1/fleet/hotspots"
	EndpointPlaceBatch  = "/v1/fleet/place/batch"
	// EndpointFreshness is the synchronous-predictive ingest profile: the
	// same route as EndpointIngest with predict: true, where the measured
	// request latency IS the arrival→prediction-visible delay.
	EndpointFreshness = "/v1/fleet/ingest?predict=true"
)

// StableTarget profiles POST /v1/stable/batch with a fixed set of feature
// rows per request.
type StableTarget struct {
	Client *predictclient.Client
	Rows   [][]float64
}

// Name implements Target.
func (t *StableTarget) Name() string { return EndpointStableBatch }

// Fire implements Target.
func (t *StableTarget) Fire(ctx context.Context) error {
	_, err := t.Client.PredictStableBatch(ctx, t.Rows)
	return err
}

// IngestTarget profiles POST /v1/fleet/ingest: each request pushes Batch
// readings cycling over Hosts with monotonically advancing timestamps, the
// traffic shape of a fleet of monitoring agents. Readings refused at the
// full bounded buffer are back-pressure, not errors — the endpoint's
// admission path is exactly what is being profiled.
type IngestTarget struct {
	Client *predictclient.Client
	Hosts  []string
	Batch  int
	// SampleS spaces consecutive timestamps (default 5 s).
	SampleS float64

	seq atomic.Int64
}

// Name implements Target.
func (t *IngestTarget) Name() string { return EndpointIngest }

// Fire implements Target.
func (t *IngestTarget) Fire(ctx context.Context) error {
	if len(t.Hosts) == 0 || t.Batch <= 0 {
		return errors.New("sloharness: ingest target needs hosts and a positive batch")
	}
	sampleS := t.SampleS
	if sampleS == 0 {
		sampleS = 5
	}
	readings := make([]predictserver.FleetReading, t.Batch)
	for i := range readings {
		n := t.seq.Add(1)
		readings[i] = predictserver.FleetReading{
			HostID:  t.Hosts[int(n)%len(t.Hosts)],
			AtS:     float64(n) * sampleS / float64(len(t.Hosts)),
			TempC:   45 + float64(n%20),
			Util:    0.3 + float64(n%7)*0.1,
			MemFrac: 0.4,
		}
	}
	_, err := t.Client.FleetIngest(ctx, readings)
	return err
}

// FreshnessTarget profiles the streaming freshness SLO: each request is a
// synchronous-predictive ingest (predict: true) over Batch readings, so
// the harness's measured latency is exactly how long an arriving reading
// takes to become a served prediction. A reading that comes back without a
// streamed prediction (deferred or dropped) is a target error — the
// freshness path was not exercised — so the harness's error gate doubles
// as a "predictions actually flowed" gate. Requires a streaming-ingest
// server whose Hosts already have sessions (prime the fleet first).
type FreshnessTarget struct {
	Client *predictclient.Client
	Hosts  []string
	Batch  int
	// SampleS spaces consecutive timestamps (default 5 s).
	SampleS float64

	seq atomic.Int64
}

// Name implements Target.
func (t *FreshnessTarget) Name() string { return EndpointFreshness }

// Fire implements Target.
func (t *FreshnessTarget) Fire(ctx context.Context) error {
	if len(t.Hosts) == 0 || t.Batch <= 0 {
		return errors.New("sloharness: freshness target needs hosts and a positive batch")
	}
	sampleS := t.SampleS
	if sampleS == 0 {
		sampleS = 5
	}
	readings := make([]predictserver.FleetReading, t.Batch)
	for i := range readings {
		n := t.seq.Add(1)
		readings[i] = predictserver.FleetReading{
			HostID:  t.Hosts[int(n)%len(t.Hosts)],
			AtS:     float64(n) * sampleS / float64(len(t.Hosts)),
			TempC:   45 + float64(n%20),
			Util:    0.3 + float64(n%7)*0.1,
			MemFrac: 0.4,
		}
	}
	resp, err := t.Client.FleetIngestPredict(ctx, readings)
	if err != nil {
		return err
	}
	if resp.Streamed != len(readings) {
		return fmt.Errorf("sloharness: %d/%d readings returned fresh predictions (deferred %d, dropped %d)",
			resp.Streamed, len(readings), resp.Deferred, resp.Dropped)
	}
	return nil
}

// HotspotsTarget profiles GET /v1/fleet/hotspots — the poll a thermal-aware
// scheduler issues every round.
type HotspotsTarget struct {
	Client *predictclient.Client
}

// Name implements Target.
func (t *HotspotsTarget) Name() string { return EndpointHotspots }

// Fire implements Target.
func (t *HotspotsTarget) Fire(ctx context.Context) error {
	_, err := t.Client.FleetHotspots(ctx)
	return err
}

// PlaceTarget profiles the placement plane with uniquely-named VM requests.
// Batch > 1 drives POST /v1/fleet/place/batch; Batch == 1 drives the
// single-VM endpoint. Typed admission outcomes (queued, rejected) are
// served decisions and count as successes — under storm load the fleet
// running out of capacity is expected; only transport or protocol failures
// are errors.
type PlaceTarget struct {
	Client *predictclient.Client
	Batch  int
	// Prefix salts VM ids so repeated steps against one fleet don't
	// collide as duplicate-id.
	Prefix string

	seq atomic.Int64
	// Placed, Queued, Rejected tally the typed outcomes across the run.
	Placed, Queued, Rejected atomic.Int64
}

// Name implements Target.
func (t *PlaceTarget) Name() string { return EndpointPlaceBatch }

func (t *PlaceTarget) next() predictserver.FleetPlaceRequest {
	return predictserver.FleetPlaceRequest{
		ID: fmt.Sprintf("%s-%010d", t.Prefix, t.seq.Add(1)), VCPUs: 1, MemoryGB: 2,
		Tasks: []predictserver.FleetTaskSpec{{CPUFraction: 0.5, MemGB: 0.5}},
	}
}

func (t *PlaceTarget) count(status string) {
	switch status {
	case "placed":
		t.Placed.Add(1)
	case "queued":
		t.Queued.Add(1)
	default:
		t.Rejected.Add(1)
	}
}

// Fire implements Target.
func (t *PlaceTarget) Fire(ctx context.Context) error {
	if t.Batch == 1 {
		dec, err := t.Client.FleetPlace(ctx, t.next())
		if err != nil {
			var placeErr *predictclient.PlaceError
			if errors.As(err, &placeErr) {
				t.Rejected.Add(1)
				return nil
			}
			return err
		}
		t.count(dec.Status)
		return nil
	}
	vms := make([]predictserver.FleetPlaceRequest, t.Batch)
	for i := range vms {
		vms[i] = t.next()
	}
	resp, err := t.Client.FleetPlaceBatch(ctx, vms)
	if err != nil {
		return err
	}
	for _, r := range resp.Results {
		t.count(r.Status)
	}
	return nil
}
