package sloharness

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// Arrival-schedule shapes for Config.Arrivals.
const (
	// ArrivalsFixed spaces requests exactly 1/rate apart (the default).
	ArrivalsFixed = "fixed"
	// ArrivalsPoisson draws exponential inter-arrival gaps with mean
	// 1/rate — the memoryless superposition of many independent
	// monitoring agents, which bursts where a fixed schedule never does.
	ArrivalsPoisson = "poisson"
	// ArrivalsUniform draws gaps uniformly on [0, 2/rate): mildly bursty,
	// bounded worst case.
	ArrivalsUniform = "uniform"
)

// SLO declares the tail-latency constraint a step must satisfy to count as
// sustainable: the latency at Quantile must not exceed Limit.
type SLO struct {
	Quantile float64       // e.g. 0.99
	Limit    time.Duration // e.g. 5 ms
}

// Label renders the SLO the way operators say it ("p99 ≤ 5ms").
func (s SLO) Label() string {
	return fmt.Sprintf("p%g ≤ %s", s.Quantile*100, s.Limit)
}

// Target is one profiled operation: Fire issues a single request and
// reports its error. Implementations must be safe for concurrent Fire
// calls. Latency is measured around Fire by the harness.
type Target interface {
	Name() string
	Fire(ctx context.Context) error
}

// RateAware targets are told each step's offered rate before the step
// starts — synthetic latency models key their behaviour on it, and real
// targets may use it to size per-step state.
type RateAware interface {
	SetRate(rps float64)
}

// Config parameterizes a profiling run. Zero fields take the defaults
// documented per field (see withDefaults).
type Config struct {
	SLO SLO

	// StartRPS is the first step's offered rate (default 32); Growth is
	// the multiplicative step factor while the SLO holds (default 2);
	// MaxRPS caps the search (default 65536).
	StartRPS, MaxRPS, Growth float64
	// Refine is how many bisection steps tighten the bracket between the
	// last sustainable and first violating rate (default 3: the reported
	// capacity is within (Growth−1)·lastGood/2³ of the true knee).
	Refine int

	// Warmup requests are issued but not measured; Measure is the scored
	// window; Cooldown keeps load applied while stragglers drain so the
	// tail of the measured window is not artificially quiet (vHive's
	// three-phase step). Defaults: 500 ms / 2 s / 250 ms.
	Warmup, Measure, Cooldown time.Duration

	// Senders bounds in-flight requests (default 64). The job queue holds
	// at most Senders entries and the dispatcher blocks when it is full —
	// the closed-loop back-pressure that makes saturation show up as an
	// achieved-throughput shortfall instead of an unbounded backlog.
	Senders int

	// MaxErrorRate and MinAchievedFrac are the non-latency sustainability
	// gates: a step fails if more than MaxErrorRate of measured requests
	// errored (default 1%) or the achieved rate fell below
	// MinAchievedFrac of the target (default 90%).
	MaxErrorRate, MinAchievedFrac float64

	// HistWidth × HistBuckets is the latency histogram shape (defaults
	// DefaultHistWidth/DefaultHistBuckets). Quantiles are exact within
	// HistWidth.
	HistWidth   time.Duration
	HistBuckets int

	// Arrivals shapes each step's dispatch schedule: ArrivalsFixed
	// (default), ArrivalsPoisson, or ArrivalsUniform. All three offer the
	// same mean rate; the randomized schedules stress queueing with
	// realistic burstiness at identical throughput.
	Arrivals string
	// ArrivalSeed seeds the randomized schedules (default 1), keeping
	// profiles reproducible run to run.
	ArrivalSeed int64
}

func (c Config) withDefaults() Config {
	if c.SLO.Quantile == 0 {
		c.SLO.Quantile = 0.99
	}
	if c.SLO.Limit == 0 {
		c.SLO.Limit = 5 * time.Millisecond
	}
	if c.StartRPS == 0 {
		c.StartRPS = 32
	}
	if c.MaxRPS == 0 {
		c.MaxRPS = 65536
	}
	if c.Growth == 0 {
		c.Growth = 2
	}
	if c.Refine == 0 {
		c.Refine = 3
	}
	if c.Warmup == 0 {
		c.Warmup = 500 * time.Millisecond
	}
	if c.Measure == 0 {
		c.Measure = 2 * time.Second
	}
	if c.Cooldown == 0 {
		c.Cooldown = 250 * time.Millisecond
	}
	if c.Senders == 0 {
		c.Senders = 64
	}
	if c.MaxErrorRate == 0 {
		c.MaxErrorRate = 0.01
	}
	if c.MinAchievedFrac == 0 {
		c.MinAchievedFrac = 0.9
	}
	if c.HistWidth == 0 {
		c.HistWidth = DefaultHistWidth
	}
	if c.HistBuckets == 0 {
		c.HistBuckets = DefaultHistBuckets
	}
	if c.Arrivals == "" {
		c.Arrivals = ArrivalsFixed
	}
	if c.ArrivalSeed == 0 {
		c.ArrivalSeed = 1
	}
	return c
}

func (c Config) validate() error {
	if c.SLO.Quantile <= 0 || c.SLO.Quantile >= 1 {
		return fmt.Errorf("sloharness: quantile %v outside (0, 1)", c.SLO.Quantile)
	}
	if c.SLO.Limit <= 0 {
		return fmt.Errorf("sloharness: non-positive SLO limit %v", c.SLO.Limit)
	}
	if c.StartRPS <= 0 || c.MaxRPS < c.StartRPS {
		return fmt.Errorf("sloharness: bad rate range [%v, %v]", c.StartRPS, c.MaxRPS)
	}
	if c.Growth <= 1 {
		return fmt.Errorf("sloharness: growth %v must exceed 1", c.Growth)
	}
	if c.Refine < 0 {
		return fmt.Errorf("sloharness: negative refine %d", c.Refine)
	}
	if c.Senders < 1 {
		return fmt.Errorf("sloharness: senders %d < 1", c.Senders)
	}
	switch c.Arrivals {
	case ArrivalsFixed, ArrivalsPoisson, ArrivalsUniform:
	default:
		return fmt.Errorf("sloharness: unknown arrival schedule %q (want %s|%s|%s)",
			c.Arrivals, ArrivalsFixed, ArrivalsPoisson, ArrivalsUniform)
	}
	return nil
}

// StepResult scores one load step.
type StepResult struct {
	TargetRPS   float64 `json:"target_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	Completed   int     `json:"completed"`
	Errors      int     `json:"errors"`
	P50Ms       float64 `json:"p50_ms"`
	P90Ms       float64 `json:"p90_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
	// QuantileMs is the latency at the SLO quantile — the number compared
	// against the limit.
	QuantileMs  float64 `json:"quantile_ms"`
	Sustainable bool    `json:"sustainable"`
	// Violation names the first failed gate: "latency", "errors",
	// "throughput", or "" when sustainable.
	Violation string `json:"violation,omitempty"`
	// Refining marks bisection steps (after the first violation bracketed
	// the knee) apart from the geometric ramp.
	Refining bool `json:"refining,omitempty"`
}

// Profile is one complete endpoint × knob profiling run.
type Profile struct {
	Endpoint string `json:"endpoint"`
	// Knobs records the configuration the run profiled (batch size,
	// admission budget, worker counts, ...) — the matrix key.
	Knobs map[string]string `json:"knobs,omitempty"`
	// SLOLabel and the raw quantile/limit describe the constraint.
	SLOLabel string       `json:"slo"`
	Quantile float64      `json:"quantile"`
	LimitMs  float64      `json:"limit_ms"`
	Steps    []StepResult `json:"steps"`
	// MaxSustainableRPS is the highest offered rate whose step satisfied
	// every gate; 0 means even StartRPS violated the SLO.
	MaxSustainableRPS float64 `json:"max_sustainable_rps"`
	// ItemsPerRequest scales RPS to items/s (batch endpoints); 1 for
	// single-item requests.
	ItemsPerRequest int `json:"items_per_request"`
	// MaxSustainableItemsPerSec = MaxSustainableRPS × ItemsPerRequest.
	MaxSustainableItemsPerSec float64 `json:"max_sustainable_items_per_sec"`
	// HitCeiling is set when every ramp step up to MaxRPS sustained the
	// SLO: the reported capacity is a floor (the knee was never found),
	// not a measured maximum.
	HitCeiling bool `json:"hit_ceiling,omitempty"`
}

// Run profiles target under cfg: geometric ramp from StartRPS until a step
// violates the SLO (or MaxRPS sustains), then Refine bisection steps
// tighten the bracket. Every executed step is recorded in order.
func Run(ctx context.Context, cfg Config, target Target) (*Profile, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &Profile{
		Endpoint:        target.Name(),
		SLOLabel:        cfg.SLO.Label(),
		Quantile:        cfg.SLO.Quantile,
		LimitMs:         float64(cfg.SLO.Limit) / float64(time.Millisecond),
		ItemsPerRequest: 1,
	}

	var lastGood, firstBad float64
	for rps := cfg.StartRPS; rps <= cfg.MaxRPS; rps *= cfg.Growth {
		res, err := runStep(ctx, cfg, target, rps, false)
		if err != nil {
			return nil, err
		}
		p.Steps = append(p.Steps, res)
		if !res.Sustainable {
			firstBad = rps
			break
		}
		lastGood = rps
	}
	if firstBad > 0 && lastGood > 0 {
		lo, hi := lastGood, firstBad
		for i := 0; i < cfg.Refine; i++ {
			mid := (lo + hi) / 2
			res, err := runStep(ctx, cfg, target, mid, true)
			if err != nil {
				return nil, err
			}
			p.Steps = append(p.Steps, res)
			if res.Sustainable {
				lo, lastGood = mid, mid
			} else {
				hi = mid
			}
		}
	}
	p.MaxSustainableRPS = lastGood
	p.MaxSustainableItemsPerSec = lastGood
	p.HitCeiling = firstBad == 0 && lastGood > 0
	return p, nil
}

// runStep offers rps for warmup+measure+cooldown. Latency is scored for
// requests scheduled inside the measure window (stragglers finish during
// cool-down, so the tail is not clipped); achieved throughput counts
// successful completions whose wall-clock finish fell inside the window —
// in a closed loop every queued job completes eventually, so only the
// completion rate, not the completion count, can expose saturation.
// Requests are dispatched against an absolute schedule (a stalled
// dispatcher catches up instead of silently offering less), but the
// bounded job queue blocks the dispatcher when all senders are busy — the
// closed-loop back-pressure.
func runStep(ctx context.Context, cfg Config, target Target, rps float64, refining bool) (StepResult, error) {
	if ra, ok := target.(RateAware); ok {
		ra.SetRate(rps)
	}
	offsetAt := arrivalSchedule(cfg, rps)
	type job struct{ measured bool }
	jobs := make(chan job, cfg.Senders)

	start := time.Now()
	measureFrom := start.Add(cfg.Warmup)
	measureTo := measureFrom.Add(cfg.Measure)
	end := measureTo.Add(cfg.Cooldown)

	hists := make([]*Histogram, cfg.Senders)
	errCounts := make([]int, cfg.Senders)
	doneCounts := make([]int, cfg.Senders) // successful finishes inside the measure window
	var wg sync.WaitGroup
	for i := 0; i < cfg.Senders; i++ {
		hists[i] = NewHistogram(cfg.HistWidth, cfg.HistBuckets)
		wg.Add(1)
		go func(hist *Histogram, errs, done *int) {
			defer wg.Done()
			for j := range jobs {
				fireStart := time.Now()
				err := target.Fire(ctx)
				finish := time.Now()
				lat := finish.Sub(fireStart)
				if err == nil && finish.After(measureFrom) && !finish.After(measureTo) {
					*done++
				}
				if !j.measured {
					continue
				}
				if err != nil {
					*errs++
					continue
				}
				hist.Record(lat)
			}
		}(hists[i], &errCounts[i], &doneCounts[i])
	}

	var dispatchErr error
dispatch:
	for i := 0; ; i++ {
		if err := ctx.Err(); err != nil {
			dispatchErr = err
			break
		}
		scheduled := start.Add(offsetAt(i))
		if scheduled.After(end) {
			break
		}
		if d := time.Until(scheduled); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				dispatchErr = ctx.Err()
				break dispatch
			}
		}
		measured := scheduled.After(measureFrom) && !scheduled.After(measureTo)
		select {
		case jobs <- job{measured: measured}:
		case <-ctx.Done():
			dispatchErr = ctx.Err()
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if dispatchErr != nil {
		return StepResult{}, dispatchErr
	}

	hist := hists[0]
	errors := errCounts[0]
	doneInWindow := doneCounts[0]
	for i := 1; i < cfg.Senders; i++ {
		hist.Merge(hists[i])
		errors += errCounts[i]
		doneInWindow += doneCounts[i]
	}
	return scoreStep(cfg, rps, refining, hist, errors, doneInWindow), nil
}

// arrivalSchedule maps dispatch index → offset from step start under the
// configured arrival shape. Randomized schedules accumulate nondecreasing
// offsets (the index is ignored — the dispatcher calls in order) and are
// deterministic in (ArrivalSeed, rate), so a repeated step replays the
// same burst pattern.
func arrivalSchedule(cfg Config, rps float64) func(i int) time.Duration {
	interval := float64(time.Second) / rps
	switch cfg.Arrivals {
	case ArrivalsPoisson, ArrivalsUniform:
		rng := rand.New(rand.NewSource(cfg.ArrivalSeed ^ int64(math.Float64bits(rps))))
		uniform := cfg.Arrivals == ArrivalsUniform
		var at float64
		return func(int) time.Duration {
			if uniform {
				at += rng.Float64() * 2 * interval
			} else {
				at += rng.ExpFloat64() * interval
			}
			return time.Duration(at)
		}
	default:
		step := time.Duration(interval)
		return func(i int) time.Duration { return time.Duration(i) * step }
	}
}

// scoreStep applies the three sustainability gates to one merged window.
func scoreStep(cfg Config, rps float64, refining bool, hist *Histogram, errors, doneInWindow int) StepResult {
	completed := int(hist.Count())
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	res := StepResult{
		TargetRPS:   rps,
		AchievedRPS: float64(doneInWindow) / cfg.Measure.Seconds(),
		Completed:   completed,
		Errors:      errors,
		P50Ms:       ms(hist.Quantile(0.50)),
		P90Ms:       ms(hist.Quantile(0.90)),
		P99Ms:       ms(hist.Quantile(0.99)),
		MaxMs:       ms(hist.Max()),
		QuantileMs:  ms(hist.Quantile(cfg.SLO.Quantile)),
		Refining:    refining,
	}
	total := completed + errors
	switch {
	case total == 0:
		res.Violation = "throughput"
	case float64(errors) > cfg.MaxErrorRate*float64(total):
		res.Violation = "errors"
	case hist.Quantile(cfg.SLO.Quantile) > cfg.SLO.Limit:
		res.Violation = "latency"
	case res.AchievedRPS < cfg.MinAchievedFrac*rps:
		res.Violation = "throughput"
	}
	res.Sustainable = res.Violation == ""
	return res
}
