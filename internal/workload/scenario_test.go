package workload

import (
	"fmt"
	"testing"

	"vmtherm/internal/vmm"
)

func TestGenOptionsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*GenOptions)
		ok     bool
	}{
		{"default", func(*GenOptions) {}, true},
		{"zero min", func(o *GenOptions) { o.VMCountMin = 0 }, false},
		{"inverted range", func(o *GenOptions) { o.VMCountMax = 1 }, false},
		{"no fans", func(o *GenOptions) { o.FanChoices = nil }, false},
		{"negative fan", func(o *GenOptions) { o.FanChoices = []int{-1} }, false},
		{"inverted ambient", func(o *GenOptions) { o.AmbientMinC, o.AmbientMaxC = 30, 20 }, false},
		{"zero tasks", func(o *GenOptions) { o.TasksPerVMMax = 0 }, false},
		{"bad host", func(o *GenOptions) { o.Host.Cores = 0 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := DefaultGenOptions()
			tt.mutate(&o)
			err := o.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate = %v, ok %v", err, tt.ok)
			}
		})
	}
}

func TestGenerateCaseWithinBounds(t *testing.T) {
	opts := DefaultGenOptions()
	for i := 0; i < 50; i++ {
		c, err := GenerateCase(opts, int64(i), fmt.Sprintf("case%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if len(c.VMs) < 1 || len(c.VMs) > opts.VMCountMax {
			t.Errorf("case %d has %d VMs", i, len(c.VMs))
		}
		if c.AmbientC < opts.AmbientMinC || c.AmbientC > opts.AmbientMaxC {
			t.Errorf("ambient %v out of range", c.AmbientC)
		}
		fanOK := false
		for _, f := range opts.FanChoices {
			if c.FanCount == f {
				fanOK = true
			}
		}
		if !fanOK {
			t.Errorf("fan count %d not among choices", c.FanCount)
		}
		for _, vm := range c.VMs {
			if len(vm.Tasks) < 1 || len(vm.Tasks) > opts.TasksPerVMMax {
				t.Errorf("vm %s has %d tasks", vm.ID, len(vm.Tasks))
			}
			for _, ts := range vm.Tasks {
				if err := ts.Task.Validate(); err != nil {
					t.Errorf("invalid generated task: %v", err)
				}
				if ts.Profile == nil {
					t.Errorf("task %s missing profile", ts.Task.ID)
				}
			}
		}
	}
}

func TestGeneratedCasesAlwaysAdmissible(t *testing.T) {
	opts := DefaultGenOptions()
	for i := 0; i < 50; i++ {
		c, err := GenerateCase(opts, 7, fmt.Sprintf("adm%d", i))
		if err != nil {
			t.Fatal(err)
		}
		host, err := vmm.NewHost("h", c.Host)
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range c.VMs {
			vm, err := vmm.NewVM(spec.ID, spec.Config)
			if err != nil {
				t.Fatal(err)
			}
			if err := host.Place(vm); err != nil {
				t.Fatalf("case %d not admissible: %v", i, err)
			}
		}
	}
}

func TestGenerateCaseDeterministic(t *testing.T) {
	opts := DefaultGenOptions()
	a, err := GenerateCase(opts, 42, "det")
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCase(opts, 42, "det")
	if err != nil {
		t.Fatal(err)
	}
	if a.FanCount != b.FanCount || a.AmbientC != b.AmbientC || len(a.VMs) != len(b.VMs) {
		t.Fatal("same seed+name produced different cases")
	}
	for i := range a.VMs {
		if a.VMs[i].ID != b.VMs[i].ID || len(a.VMs[i].Tasks) != len(b.VMs[i].Tasks) {
			t.Fatal("vm specs differ")
		}
		for j := range a.VMs[i].Tasks {
			ta, tb := a.VMs[i].Tasks[j].Task, b.VMs[i].Tasks[j].Task
			if ta != tb {
				t.Fatalf("task differs: %+v vs %+v", ta, tb)
			}
		}
	}
	c, err := GenerateCase(opts, 43, "det")
	if err != nil {
		t.Fatal(err)
	}
	if a.AmbientC == c.AmbientC {
		t.Error("different seeds should differ (ambient)")
	}
}

func TestGenerateCases(t *testing.T) {
	cases, err := GenerateCases(DefaultGenOptions(), 1, "batch", 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 20 {
		t.Fatalf("got %d cases", len(cases))
	}
	names := map[string]bool{}
	for _, c := range cases {
		if names[c.Name] {
			t.Errorf("duplicate name %s", c.Name)
		}
		names[c.Name] = true
	}
	if _, err := GenerateCases(DefaultGenOptions(), 1, "x", 0); err == nil {
		t.Error("zero cases should fail")
	}
}

func TestGenerateCaseInvalidOpts(t *testing.T) {
	opts := DefaultGenOptions()
	opts.VMCountMin = 0
	if _, err := GenerateCase(opts, 1, "bad"); err == nil {
		t.Error("invalid opts should fail")
	}
}

func TestDynamicCasesHaveTimeVaryingProfiles(t *testing.T) {
	opts := DefaultGenOptions()
	opts.Dynamic = true
	varying := 0
	for i := 0; i < 30; i++ {
		c, err := GenerateCase(opts, int64(i), fmt.Sprintf("dyn%d", i))
		if err != nil {
			t.Fatal(err)
		}
		for _, vm := range c.VMs {
			for _, ts := range vm.Tasks {
				if ts.Profile.At(0) != ts.Profile.At(777) {
					varying++
				}
			}
		}
	}
	if varying == 0 {
		t.Error("dynamic generation never produced a time-varying profile")
	}
}

func TestNumTasks(t *testing.T) {
	c := Case{VMs: []VMSpec{
		{Tasks: make([]TaskSpec, 2)},
		{Tasks: make([]TaskSpec, 3)},
	}}
	if c.NumTasks() != 5 {
		t.Errorf("NumTasks = %d, want 5", c.NumTasks())
	}
}
