package workload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestConstantClamped(t *testing.T) {
	if (Constant{Level: 1.7}).At(10) != 1 {
		t.Error("constant not clamped high")
	}
	if (Constant{Level: -0.5}).At(0) != 0 {
		t.Error("constant not clamped low")
	}
	if (Constant{Level: 0.42}).At(999) != 0.42 {
		t.Error("constant changed value")
	}
}

func TestStep(t *testing.T) {
	s := Step{Before: 0.2, After: 0.8, SwitchAt: 100}
	if s.At(99.9) != 0.2 {
		t.Error("before switch wrong")
	}
	if s.At(100) != 0.8 {
		t.Error("at switch should take After")
	}
	if s.At(500) != 0.8 {
		t.Error("after switch wrong")
	}
}

func TestRamp(t *testing.T) {
	r := Ramp{From: 0.2, To: 0.6, Start: 10, Duration: 20}
	if r.At(5) != 0.2 {
		t.Error("before ramp")
	}
	if got := r.At(20); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("mid ramp = %v, want 0.4", got)
	}
	if r.At(30) != 0.6 || r.At(100) != 0.6 {
		t.Error("after ramp")
	}
}

func TestRampZeroDuration(t *testing.T) {
	r := Ramp{From: 0.1, To: 0.9, Start: 10, Duration: 0}
	if r.At(9) != 0.1 {
		t.Error("before instant ramp")
	}
	if r.At(11) != 0.9 {
		t.Error("after instant ramp")
	}
}

func TestSinePeriodic(t *testing.T) {
	s := Sine{Base: 0.5, Amplitude: 0.3, Period: 100}
	if math.Abs(s.At(0)-0.5) > 1e-12 {
		t.Errorf("At(0) = %v", s.At(0))
	}
	if math.Abs(s.At(25)-0.8) > 1e-12 {
		t.Errorf("At(quarter) = %v, want 0.8", s.At(25))
	}
	if math.Abs(s.At(0)-s.At(100)) > 1e-12 {
		t.Error("not periodic")
	}
}

func TestSineZeroPeriodFallsBackToBase(t *testing.T) {
	s := Sine{Base: 0.4, Amplitude: 0.3, Period: 0}
	if s.At(17) != 0.4 {
		t.Errorf("At = %v, want base", s.At(17))
	}
}

func TestBurstySquareWave(t *testing.T) {
	b := Bursty{Low: 0.1, High: 0.9, Period: 100, DutyCycle: 0.25}
	if b.At(0) != 0.9 || b.At(24) != 0.9 {
		t.Error("high phase wrong")
	}
	if b.At(25) != 0.1 || b.At(99) != 0.1 {
		t.Error("low phase wrong")
	}
	if b.At(100) != 0.9 {
		t.Error("next period should restart high")
	}
}

func TestBurstyZeroPeriod(t *testing.T) {
	b := Bursty{Low: 0.2, High: 0.9, Period: 0, DutyCycle: 0.5}
	if b.At(5) != 0.2 {
		t.Error("zero period should hold Low")
	}
}

func TestTrace(t *testing.T) {
	tr, err := NewTrace([]TracePoint{{0, 0}, {10, 1}, {20, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.At(-5) != 0 {
		t.Error("clamp before start")
	}
	if got := tr.At(5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("interp = %v, want 0.5", got)
	}
	if got := tr.At(15); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("interp = %v, want 0.75", got)
	}
	if tr.At(100) != 0.5 {
		t.Error("clamp after end")
	}
}

func TestNewTraceValidation(t *testing.T) {
	if _, err := NewTrace(nil); err == nil {
		t.Error("empty trace should fail")
	}
	if _, err := NewTrace([]TracePoint{{0, 1}, {0, 2}}); err == nil {
		t.Error("non-increasing trace should fail")
	}
}

func TestMeanOver(t *testing.T) {
	m, err := MeanOver(Constant{Level: 0.3}, 0, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-0.3) > 1e-12 {
		t.Errorf("mean = %v", m)
	}
	if _, err := MeanOver(nil, 0, 1, 1); err == nil {
		t.Error("nil profile should fail")
	}
	if _, err := MeanOver(Constant{}, 10, 0, 1); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := MeanOver(Constant{}, 0, 1, 0); err == nil {
		t.Error("zero step should fail")
	}
}

// Property: every profile stays within [0, 1] at all times.
func TestProfilesBoundedProperty(t *testing.T) {
	f := func(base, amp, period, t float64) bool {
		if math.IsNaN(base) || math.IsNaN(amp) || math.IsNaN(period) || math.IsNaN(t) {
			return true
		}
		t = math.Abs(t)
		profiles := []Profile{
			Constant{Level: base},
			Step{Before: base, After: amp, SwitchAt: period},
			Ramp{From: base, To: amp, Start: 0, Duration: math.Abs(period)},
			Sine{Base: base, Amplitude: amp, Period: period},
			Bursty{Low: base, High: amp, Period: period, DutyCycle: 0.5},
		}
		for _, p := range profiles {
			v := p.At(t)
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTraceFromCSV(t *testing.T) {
	csvText := "t_s,demand\n0,0.2\n60,0.8\n120,0.5\n"
	tr, err := TraceFromCSV(strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	if tr.At(0) != 0.2 || tr.At(120) != 0.5 {
		t.Errorf("endpoints = %v, %v", tr.At(0), tr.At(120))
	}
	if got := tr.At(30); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("interpolated = %v, want 0.5", got)
	}
}

func TestTraceFromCSVNoHeader(t *testing.T) {
	tr, err := TraceFromCSV(strings.NewReader("0,0.1\n10,0.9\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.At(10) != 0.9 {
		t.Errorf("At(10) = %v", tr.At(10))
	}
}

func TestTraceFromCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"header only":    "t,v\n",
		"bad value":      "0,abc\n",
		"bad mid time":   "0,0.5\nxyz,0.6\n",
		"wrong columns":  "0,0.5,9\n",
		"non-increasing": "0,0.5\n0,0.6\n",
	}
	for name, text := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := TraceFromCSV(strings.NewReader(text)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestTraceFromCSVDrivesTask(t *testing.T) {
	// End to end: a recorded trace becomes a task profile on a rig-ready
	// spec (values clamp into [0,1] like every profile).
	tr, err := TraceFromCSV(strings.NewReader("0,0.3\n900,1.5\n1800,0.1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.At(900) != 1 {
		t.Errorf("over-unity trace should clamp: %v", tr.At(900))
	}
	mean, err := MeanOver(tr, 0, 1800, 10)
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0.3 || mean >= 1 {
		t.Errorf("trace mean = %v", mean)
	}
}
