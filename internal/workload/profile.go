// Package workload generates the heterogeneous, time-varying load the
// paper's experiments run: per-task load profiles (constant, step, ramp,
// sine, bursty, trace) and randomized experiment cases with 2–12 VMs per
// host, mixed task classes, varying fan counts and environment temperatures
// ("Numerous experiments were conducted under different scenarios").
package workload

import (
	"bytes"
	"encoding/csv"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Profile gives a task's CPU demand fraction (of one vCPU) at time t
// seconds. Implementations must return values in [0, 1] for t >= 0.
type Profile interface {
	// At returns the demand fraction at time t.
	At(t float64) float64
}

// Constant is a fixed load level.
type Constant struct {
	Level float64
}

// At implements Profile.
func (c Constant) At(float64) float64 { return clamp01(c.Level) }

// Step switches from Before to After at time SwitchAt.
type Step struct {
	Before, After float64
	SwitchAt      float64
}

// At implements Profile.
func (s Step) At(t float64) float64 {
	if t < s.SwitchAt {
		return clamp01(s.Before)
	}
	return clamp01(s.After)
}

// Ramp linearly interpolates From→To over [Start, Start+Duration].
type Ramp struct {
	From, To        float64
	Start, Duration float64
}

// At implements Profile.
func (r Ramp) At(t float64) float64 {
	switch {
	case t <= r.Start:
		return clamp01(r.From)
	case r.Duration <= 0 || t >= r.Start+r.Duration:
		return clamp01(r.To)
	default:
		frac := (t - r.Start) / r.Duration
		return clamp01(r.From + frac*(r.To-r.From))
	}
}

// Sine oscillates around Base with the given Amplitude and Period.
type Sine struct {
	Base, Amplitude float64
	Period          float64
	Phase           float64
}

// At implements Profile.
func (s Sine) At(t float64) float64 {
	if s.Period <= 0 {
		return clamp01(s.Base)
	}
	return clamp01(s.Base + s.Amplitude*math.Sin(2*math.Pi*t/s.Period+s.Phase))
}

// Bursty is a square wave: High for DutyCycle of each Period, Low otherwise.
type Bursty struct {
	Low, High float64
	Period    float64
	DutyCycle float64 // fraction of the period spent at High, in (0,1)
}

// At implements Profile.
func (b Bursty) At(t float64) float64 {
	if b.Period <= 0 {
		return clamp01(b.Low)
	}
	pos := math.Mod(t, b.Period) / b.Period
	if pos < clamp01(b.DutyCycle) {
		return clamp01(b.High)
	}
	return clamp01(b.Low)
}

// TracePoint is one sample of a recorded load trace.
type TracePoint struct {
	T float64
	V float64
}

// Trace replays a recorded profile with linear interpolation, clamping to
// the endpoints outside the recorded range.
type Trace struct {
	points []TracePoint
}

// NewTrace builds a trace profile from samples sorted by time.
func NewTrace(points []TracePoint) (*Trace, error) {
	if len(points) == 0 {
		return nil, errors.New("workload: empty trace")
	}
	for i := 1; i < len(points); i++ {
		if points[i].T <= points[i-1].T {
			return nil, fmt.Errorf("workload: trace not strictly increasing at %d", i)
		}
	}
	cp := make([]TracePoint, len(points))
	copy(cp, points)
	return &Trace{points: cp}, nil
}

// GobEncode implements encoding/gob.GobEncoder: a Trace serializes as its
// sample points, so a checkpointed pending placement carrying trace-driven
// tasks survives a control-plane restart intact.
func (tr *Trace) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(tr.points); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements encoding/gob.GobDecoder, revalidating the points the
// way NewTrace does — a corrupt byte stream must not yield a Trace that
// panics later.
func (tr *Trace) GobDecode(b []byte) error {
	var pts []TracePoint
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&pts); err != nil {
		return err
	}
	nt, err := NewTrace(pts)
	if err != nil {
		return err
	}
	*tr = *nt
	return nil
}

// At implements Profile.
func (tr *Trace) At(t float64) float64 {
	pts := tr.points
	n := len(pts)
	if t <= pts[0].T {
		return clamp01(pts[0].V)
	}
	if t >= pts[n-1].T {
		return clamp01(pts[n-1].V)
	}
	hi := sort.Search(n, func(i int) bool { return pts[i].T >= t })
	lo := hi - 1
	frac := (t - pts[lo].T) / (pts[hi].T - pts[lo].T)
	return clamp01(pts[lo].V + frac*(pts[hi].V-pts[lo].V))
}

// TraceFromCSV reads a two-column CSV (t_seconds, demand_fraction) into a
// Trace profile, so recorded production utilization can drive simulated
// tasks. A header row is detected and skipped if the first field does not
// parse as a number.
func TraceFromCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	var points []TracePoint
	for line := 1; ; line++ {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace csv line %d: %w", line, err)
		}
		t, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			if line == 1 {
				continue // header
			}
			return nil, fmt.Errorf("workload: trace csv line %d time: %w", line, err)
		}
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace csv line %d value: %w", line, err)
		}
		points = append(points, TracePoint{T: t, V: v})
	}
	return NewTrace(points)
}

// MeanOver numerically averages a profile over [from, to] with the given
// sampling step; used to derive expected utilization of a scenario.
func MeanOver(p Profile, from, to, step float64) (float64, error) {
	if p == nil {
		return 0, errors.New("workload: nil profile")
	}
	if step <= 0 || to <= from {
		return 0, fmt.Errorf("workload: bad range [%v, %v] step %v", from, to, step)
	}
	var sum float64
	var n int
	for t := from; t <= to; t += step {
		sum += p.At(t)
		n++
	}
	return sum / float64(n), nil
}

func clamp01(x float64) float64 {
	// NaN (e.g. a Sine evaluated at astronomically large t where the phase
	// computation overflows) degrades to zero load rather than poisoning the
	// simulation.
	if math.IsNaN(x) {
		return 0
	}
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
