package workload

import (
	"fmt"

	"vmtherm/internal/mathx"
	"vmtherm/internal/vmm"
)

// TaskSpec pairs a task definition with its load profile over time.
type TaskSpec struct {
	Task    vmm.Task
	Profile Profile
}

// VMSpec describes one VM of an experiment case.
type VMSpec struct {
	ID     string
	Config vmm.VMConfig
	Tasks  []TaskSpec
}

// Case is one randomized experiment of the paper's evaluation: a host shape,
// cooling and environment conditions, and a set of VMs with tasks.
type Case struct {
	// Name identifies the case in reports.
	Name string
	// Host is the server capacity (θ_cpu, θ_memory derive from it).
	Host vmm.HostConfig
	// FanCount is the number of healthy fans (θ_fan).
	FanCount int
	// AmbientC is the environment temperature (δ_env).
	AmbientC float64
	// VMs are the tenant VMs with their tasks (ξ_VM).
	VMs []VMSpec
}

// NumTasks counts all tasks across VMs.
func (c Case) NumTasks() int {
	n := 0
	for _, vm := range c.VMs {
		n += len(vm.Tasks)
	}
	return n
}

// GenOptions bounds the randomized case generator. The defaults mirror the
// paper's evaluation: 2–12 VMs per server, mixed task classes, 2–6 fans,
// datacenter ambient between 18 and 28 °C.
type GenOptions struct {
	VMCountMin, VMCountMax int
	FanChoices             []int
	AmbientMinC            float64
	AmbientMaxC            float64
	// TasksPerVMMax bounds tasks per VM (min is 1).
	TasksPerVMMax int
	// Dynamic, when true, assigns time-varying profiles (sine/bursty/ramp)
	// in addition to constant loads; stable-prediction experiments use
	// constant loads, dynamic-prediction experiments enable this.
	Dynamic bool
	// Host is the host shape used for every case.
	Host vmm.HostConfig
}

// DefaultGenOptions returns the paper-equivalent generator bounds.
func DefaultGenOptions() GenOptions {
	return GenOptions{
		VMCountMin:    2,
		VMCountMax:    12,
		FanChoices:    []int{2, 4, 6},
		AmbientMinC:   18,
		AmbientMaxC:   28,
		TasksPerVMMax: 3,
		Host:          vmm.DefaultHostConfig(),
	}
}

// Validate checks generator bounds.
func (o GenOptions) Validate() error {
	if o.VMCountMin < 1 || o.VMCountMax < o.VMCountMin {
		return fmt.Errorf("workload: vm count range [%d, %d] invalid", o.VMCountMin, o.VMCountMax)
	}
	if len(o.FanChoices) == 0 {
		return fmt.Errorf("workload: no fan choices")
	}
	for _, f := range o.FanChoices {
		if f < 0 {
			return fmt.Errorf("workload: negative fan choice %d", f)
		}
	}
	if o.AmbientMaxC < o.AmbientMinC {
		return fmt.Errorf("workload: ambient range [%v, %v] inverted", o.AmbientMinC, o.AmbientMaxC)
	}
	if o.TasksPerVMMax < 1 {
		return fmt.Errorf("workload: tasks per VM max %d < 1", o.TasksPerVMMax)
	}
	return o.Host.Validate()
}

// vmShapes are the flavor catalog cases draw from (vCPUs, memory GB),
// deliberately heterogeneous as in multi-tenant clouds.
var vmShapes = []vmm.VMConfig{
	{VCPUs: 1, MemoryGB: 2},
	{VCPUs: 1, MemoryGB: 4},
	{VCPUs: 2, MemoryGB: 4},
	{VCPUs: 2, MemoryGB: 8},
	{VCPUs: 4, MemoryGB: 8},
	{VCPUs: 4, MemoryGB: 16},
}

// GenerateCase produces one randomized experiment case. The same (opts,
// seed, name) triple always yields the same case.
func GenerateCase(opts GenOptions, seed int64, name string) (Case, error) {
	if err := opts.Validate(); err != nil {
		return Case{}, err
	}
	rng := mathx.SplitStable(seed, "case:"+name)
	c := Case{
		Name:     name,
		Host:     opts.Host,
		FanCount: opts.FanChoices[rng.Intn(len(opts.FanChoices))],
		AmbientC: rng.Uniform(opts.AmbientMinC, opts.AmbientMaxC),
	}
	nVMs := rng.IntBetween(opts.VMCountMin, opts.VMCountMax)

	// Track capacity so generated cases are always admissible.
	vcpuBudget := float64(opts.Host.Cores) * opts.Host.CPUOvercommit
	memBudget := opts.Host.MemoryGB

	for v := 0; v < nVMs; v++ {
		shape := vmShapes[rng.Intn(len(vmShapes))]
		if float64(shape.VCPUs) > vcpuBudget || shape.MemoryGB > memBudget {
			// Fall back to the smallest flavor; if even that does not fit,
			// the host is full and the case simply has fewer VMs.
			shape = vmShapes[0]
			if float64(shape.VCPUs) > vcpuBudget || shape.MemoryGB > memBudget {
				break
			}
		}
		vcpuBudget -= float64(shape.VCPUs)
		memBudget -= shape.MemoryGB

		spec := VMSpec{
			ID:     fmt.Sprintf("%s-vm%02d", name, v),
			Config: shape,
		}
		nTasks := rng.IntBetween(1, opts.TasksPerVMMax)
		for k := 0; k < nTasks; k++ {
			spec.Tasks = append(spec.Tasks, randomTask(rng, opts, spec.ID, k))
		}
		c.VMs = append(c.VMs, spec)
	}
	return c, nil
}

// GenerateCases produces n cases named base-00, base-01, ...
func GenerateCases(opts GenOptions, seed int64, base string, n int) ([]Case, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: case count %d < 1", n)
	}
	out := make([]Case, 0, n)
	for i := 0; i < n; i++ {
		c, err := GenerateCase(opts, seed, fmt.Sprintf("%s-%02d", base, i))
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// randomTask draws a task whose resource profile matches its class.
func randomTask(rng *mathx.RNG, opts GenOptions, vmID string, k int) TaskSpec {
	classes := vmm.TaskClasses()
	class := classes[rng.Intn(len(classes))]
	id := fmt.Sprintf("%s-t%d", vmID, k)

	var cpu, memGB float64
	var prof Profile
	switch class {
	case vmm.CPUBound:
		cpu = rng.Uniform(0.6, 1.0)
		memGB = rng.Uniform(0.1, 1.0)
	case vmm.MemBound:
		cpu = rng.Uniform(0.25, 0.55)
		memGB = rng.Uniform(2.0, 6.0)
	case vmm.IOBound:
		cpu = rng.Uniform(0.05, 0.2)
		memGB = rng.Uniform(0.2, 1.5)
	case vmm.Bursty:
		cpu = rng.Uniform(0.5, 0.9)
		memGB = rng.Uniform(0.5, 2.0)
	}

	if opts.Dynamic {
		switch class {
		case vmm.Bursty:
			prof = Bursty{
				Low:       cpu * 0.15,
				High:      cpu,
				Period:    rng.Uniform(60, 300),
				DutyCycle: rng.Uniform(0.3, 0.7),
			}
		case vmm.CPUBound:
			prof = Sine{
				Base:      cpu * 0.85,
				Amplitude: cpu * 0.15,
				Period:    rng.Uniform(120, 600),
				Phase:     rng.Uniform(0, 6.28),
			}
		default:
			prof = Constant{Level: cpu}
		}
	} else {
		prof = Constant{Level: cpu}
	}

	return TaskSpec{
		Task: vmm.Task{
			ID:          id,
			Class:       class,
			CPUFraction: prof.At(0),
			MemGB:       memGB,
		},
		Profile: prof,
	}
}
