// Package core implements the paper's contribution: VM-level CPU temperature
// prediction for cloud datacenters.
//
// Stable prediction (Eqs. 1–2): a Support Vector Regression pipeline maps
// {θ_cpu, θ_memory, θ_fan, ξ_VM, δ_env} records to ψ_stable, with svm-scale
// preprocessing and easygrid-style (C, γ, ε) selection by k-fold
// cross-validation.
//
// Dynamic prediction (Eqs. 3–8): a pre-defined logarithmic saturation curve
// ψ*(t) anchored at φ(0) and ψ_stable is calibrated online with learning
// rate λ every Δ_update seconds; predictions at horizon Δ_gap add the
// current calibration γ.
package core

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vmtherm/internal/dataset"
	"vmtherm/internal/mlgrid"
	"vmtherm/internal/svm"
	"vmtherm/internal/workload"
)

// StableConfig configures stable-temperature model training.
type StableConfig struct {
	// Grid is the hyper-parameter search space (easygrid equivalent).
	Grid mlgrid.Config
	// ScaleLower/ScaleUpper bound the svm-scale feature range.
	ScaleLower, ScaleUpper float64
}

// DefaultStableConfig mirrors the paper's setup: RBF kernel, 10-fold
// grid-searched hyper-parameters, features scaled to [-1, 1].
func DefaultStableConfig() StableConfig {
	return StableConfig{
		Grid:       mlgrid.Default(),
		ScaleLower: -1,
		ScaleUpper: 1,
	}
}

// FastStableConfig is a reduced grid for tests and quick benchmarks; the
// full default grid is what cmd/vmtherm-train uses.
func FastStableConfig() StableConfig {
	cfg := DefaultStableConfig()
	cfg.Grid.Cs = []float64{1, 16, 256}
	cfg.Grid.Gammas = []float64{0.01, 0.1, 1}
	cfg.Grid.Epsilons = []float64{0.1}
	cfg.Grid.Folds = 5
	return cfg
}

// StablePredictor is a trained ψ_stable model: scaler + SVR + the grid point
// that won cross-validation.
type StablePredictor struct {
	scaler *svm.Scaler
	model  *svm.Model
	best   mlgrid.Point
	cvMSE  float64
}

// TrainStable fits the full paper pipeline on Eq. (2) records.
func TrainStable(ctx context.Context, records []dataset.Record, cfg StableConfig) (*StablePredictor, error) {
	if len(records) == 0 {
		return nil, errors.New("core: no training records")
	}
	x, y := dataset.FeaturesAndTargets(records)

	scaler, err := svm.NewScaler(cfg.ScaleLower, cfg.ScaleUpper)
	if err != nil {
		return nil, err
	}
	if err := scaler.Fit(x); err != nil {
		return nil, err
	}
	xs, err := scaler.TransformAll(x)
	if err != nil {
		return nil, err
	}

	best, _, err := mlgrid.Search(ctx, xs, y, cfg.Grid)
	if err != nil {
		return nil, fmt.Errorf("core: grid search: %w", err)
	}

	kernel := cfg.Grid.Kernel
	kernel.Gamma = best.Point.Gamma
	model, err := svm.Train(xs, y, svm.TrainParams{
		Kernel:    kernel,
		C:         best.Point.C,
		Epsilon:   best.Point.Epsilon,
		MaxIter:   cfg.Grid.MaxIter,
		Selection: cfg.Grid.Selection,
	})
	if err != nil {
		return nil, fmt.Errorf("core: final training: %w", err)
	}
	return &StablePredictor{scaler: scaler, model: model, best: best.Point, cvMSE: best.MSE}, nil
}

// Best returns the winning grid point.
func (p *StablePredictor) Best() mlgrid.Point { return p.best }

// CVMSE returns the winning point's cross-validated MSE.
func (p *StablePredictor) CVMSE() float64 { return p.cvMSE }

// NumSV returns the support-vector count of the trained model.
func (p *StablePredictor) NumSV() int { return p.model.NumSV() }

// PredictFeatures predicts ψ_stable from a raw (unscaled) feature vector.
func (p *StablePredictor) PredictFeatures(features []float64) (float64, error) {
	scaled, err := p.scaler.Transform(features)
	if err != nil {
		return 0, err
	}
	return p.model.Predict(scaled)
}

// PredictScratch holds the reusable working memory of PredictBatchInto: the
// contiguous scaled-feature matrix and the SVM kernel's distance buffer. The
// zero value is ready to use; buffers grow on first use and are reused, so a
// long-lived scratch makes repeated batch predictions allocation-free. A
// scratch must not be shared between concurrent calls.
type PredictScratch struct {
	scaled []float64
	svm    svm.BatchScratch
}

// PredictBatchInto predicts ψ_stable for len(out) raw feature rows, writing
// one prediction per row into out. It is the allocation-free spine under
// PredictBatch: rows are scaled into the scratch's contiguous flat matrix
// and evaluated through the SVM batch kernel in one pass. Safe for
// concurrent use as long as each call has its own scratch.
func (p *StablePredictor) PredictBatchInto(features [][]float64, out []float64, s *PredictScratch) error {
	if len(features) != len(out) {
		return fmt.Errorf("core: %d feature rows for %d outputs", len(features), len(out))
	}
	if len(features) == 0 {
		return nil
	}
	dim := p.scaler.Dim()
	need := len(features) * dim
	if cap(s.scaled) < need {
		s.scaled = make([]float64, need)
	}
	s.scaled = s.scaled[:need]
	for i, row := range features {
		if err := p.scaler.TransformInto(row, s.scaled[i*dim:(i+1)*dim]); err != nil {
			return fmt.Errorf("core: batch row %d: %w", i, err)
		}
	}
	if err := p.model.PredictBatchInto(s.scaled, out, &s.svm); err != nil {
		return fmt.Errorf("core: batch predict: %w", err)
	}
	return nil
}

// PredictBatch predicts ψ_stable for many raw feature vectors at once,
// returning one prediction per row. It is the path a fleet-scale serving
// layer should use: rows are scaled through one reused scratch buffer and
// evaluated through the SVM batch kernel (flattened support vectors, blocked
// distance pass, fast exponential), which is substantially faster than
// looping PredictFeatures. Results match PredictFeatures to ~1e-12. Loops
// that predict every round should hold a PredictScratch and call
// PredictBatchInto instead.
func (p *StablePredictor) PredictBatch(features [][]float64) ([]float64, error) {
	if len(features) == 0 {
		return nil, nil
	}
	out := make([]float64, len(features))
	var s PredictScratch
	if err := p.PredictBatchInto(features, out, &s); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictCase predicts ψ_stable for a workload case; horizonS is the
// experiment duration used to average dynamic profiles (Eq. 2's input
// derives from the VMM's view of deployment).
func (p *StablePredictor) PredictCase(c workload.Case, horizonS float64) (float64, error) {
	features, err := dataset.Encode(c, horizonS)
	if err != nil {
		return 0, err
	}
	return p.PredictFeatures(features)
}

// Save writes the predictor (scaler bounds + SVM model) in a single text
// stream: a vmtherm header section followed by a LIBSVM model body.
func (p *StablePredictor) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	mins, maxs := p.scaler.Bounds()
	fmt.Fprintln(bw, "vmtherm_stable_model v1")
	fmt.Fprintf(bw, "scale_lower %s\n", fmtFloat(p.scaler.Lower))
	fmt.Fprintf(bw, "scale_upper %s\n", fmtFloat(p.scaler.Upper))
	fmt.Fprintf(bw, "mins %s\n", joinFloats(mins))
	fmt.Fprintf(bw, "maxs %s\n", joinFloats(maxs))
	fmt.Fprintf(bw, "grid_c %s\n", fmtFloat(p.best.C))
	fmt.Fprintf(bw, "grid_gamma %s\n", fmtFloat(p.best.Gamma))
	fmt.Fprintf(bw, "grid_epsilon %s\n", fmtFloat(p.best.Epsilon))
	fmt.Fprintf(bw, "cv_mse %s\n", fmtFloat(p.cvMSE))
	fmt.Fprintln(bw, "model:")
	if err := bw.Flush(); err != nil {
		return err
	}
	return svm.WriteModel(w, p.model)
}

// LoadStable reads a predictor written by Save.
func LoadStable(r io.Reader) (*StablePredictor, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if strings.TrimSpace(line) != "vmtherm_stable_model v1" {
		return nil, fmt.Errorf("core: bad magic %q", strings.TrimSpace(line))
	}
	header := map[string]string{}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("core: truncated header: %w", err)
		}
		line = strings.TrimSpace(line)
		if line == "model:" {
			break
		}
		parts := strings.SplitN(line, " ", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("core: malformed header line %q", line)
		}
		header[parts[0]] = parts[1]
	}
	lower, err := parseFloat(header, "scale_lower")
	if err != nil {
		return nil, err
	}
	upper, err := parseFloat(header, "scale_upper")
	if err != nil {
		return nil, err
	}
	mins, err := parseFloats(header, "mins")
	if err != nil {
		return nil, err
	}
	maxs, err := parseFloats(header, "maxs")
	if err != nil {
		return nil, err
	}
	scaler, err := svm.NewScaler(lower, upper)
	if err != nil {
		return nil, err
	}
	if err := scaler.SetBounds(mins, maxs); err != nil {
		return nil, err
	}
	model, err := svm.ReadModel(br)
	if err != nil {
		return nil, err
	}
	p := &StablePredictor{scaler: scaler, model: model}
	// Grid metadata is informational; ignore absence.
	if v, err := parseFloat(header, "grid_c"); err == nil {
		p.best.C = v
	}
	if v, err := parseFloat(header, "grid_gamma"); err == nil {
		p.best.Gamma = v
	}
	if v, err := parseFloat(header, "grid_epsilon"); err == nil {
		p.best.Epsilon = v
	}
	if v, err := parseFloat(header, "cv_mse"); err == nil {
		p.cvMSE = v
	}
	return p, nil
}

func fmtFloat(f float64) string { return strconv.FormatFloat(f, 'g', 17, 64) }

func joinFloats(fs []float64) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = fmtFloat(f)
	}
	return strings.Join(parts, " ")
}

func parseFloat(h map[string]string, key string) (float64, error) {
	s, ok := h[key]
	if !ok {
		return 0, fmt.Errorf("core: header missing %q", key)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("core: header %q: %w", key, err)
	}
	return v, nil
}

func parseFloats(h map[string]string, key string) ([]float64, error) {
	s, ok := h[key]
	if !ok {
		return nil, fmt.Errorf("core: header missing %q", key)
	}
	fields := strings.Fields(s)
	out := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("core: header %q field %d: %w", key, i, err)
		}
		out[i] = v
	}
	return out, nil
}
