package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewCurveValidation(t *testing.T) {
	if _, err := NewCurve(20, 60, 0, 30); err == nil {
		t.Error("zero t_break should fail")
	}
	if _, err := NewCurve(20, 60, 600, 0); err == nil {
		t.Error("zero delta should fail")
	}
	if _, err := NewCurve(math.NaN(), 60, 600, 30); err == nil {
		t.Error("NaN phi0 should fail")
	}
	if _, err := NewCurve(20, 60, 600, 30); err != nil {
		t.Error(err)
	}
}

func TestCurveAnchors(t *testing.T) {
	c, err := NewCurve(22, 75, 600, 30)
	if err != nil {
		t.Fatal(err)
	}
	if c.Value(0) != 22 {
		t.Errorf("ψ*(0) = %v, want φ(0)=22", c.Value(0))
	}
	if c.Value(-10) != 22 {
		t.Errorf("ψ*(-10) = %v, want clamp to φ(0)", c.Value(-10))
	}
	if c.Value(600) != 75 {
		t.Errorf("ψ*(t_break) = %v, want ψ_stable=75", c.Value(600))
	}
	if c.Value(1e6) != 75 {
		t.Errorf("ψ*(∞) = %v, want 75", c.Value(1e6))
	}
}

func TestCurveMonotoneWarming(t *testing.T) {
	c, err := NewCurve(20, 80, 600, 30)
	if err != nil {
		t.Fatal(err)
	}
	prev := c.Value(0)
	for tt := 1.0; tt <= 700; tt++ {
		cur := c.Value(tt)
		if cur < prev-1e-12 {
			t.Fatalf("curve not monotone at %v: %v < %v", tt, cur, prev)
		}
		prev = cur
	}
}

func TestCurveCoolingDirection(t *testing.T) {
	// φ(0) above ψ_stable: the curve must descend (e.g. load removed).
	c, err := NewCurve(80, 50, 600, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !(c.Value(100) < 80 && c.Value(100) > 50) {
		t.Errorf("cooling curve out of band: %v", c.Value(100))
	}
	if c.Value(600) != 50 {
		t.Errorf("cooling anchor = %v", c.Value(600))
	}
}

func TestCurveSteeperWithSmallerDelta(t *testing.T) {
	steep, err := NewCurve(20, 80, 600, 5)
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := NewCurve(20, 80, 600, 120)
	if err != nil {
		t.Fatal(err)
	}
	// Early in the transient, a small δ curve must be further along.
	if steep.Value(60) <= shallow.Value(60) {
		t.Errorf("δ=5 at t=60 (%v) should exceed δ=120 (%v)",
			steep.Value(60), shallow.Value(60))
	}
}

// Property: the curve is always bounded by its anchors.
func TestCurveBoundedProperty(t *testing.T) {
	f := func(phi0, stable, tq float64) bool {
		if math.IsNaN(phi0) || math.IsNaN(stable) || math.IsNaN(tq) {
			return true
		}
		if math.Abs(phi0) > 1e6 || math.Abs(stable) > 1e6 {
			return true
		}
		c, err := NewCurve(phi0, stable, 600, 30)
		if err != nil {
			return false
		}
		v := c.Value(math.Mod(math.Abs(tq), 1200))
		lo := math.Min(phi0, stable) - 1e-9
		hi := math.Max(phi0, stable) + 1e-9
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
