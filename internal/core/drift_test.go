package core

import (
	"math"
	"testing"

	"vmtherm/internal/mathx"
)

func TestNewDriftDetectorValidation(t *testing.T) {
	if _, err := NewDriftDetector(1, 1); err == nil {
		t.Error("window 1 should fail")
	}
	if _, err := NewDriftDetector(10, 0); err == nil {
		t.Error("zero threshold should fail")
	}
	if _, err := NewDriftDetector(10, 1.5); err != nil {
		t.Error(err)
	}
}

func TestNoDriftOnAccuratePredictions(t *testing.T) {
	d, err := NewDriftDetector(20, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	g := mathx.NewRNG(1)
	for i := 0; i < 200; i++ {
		actual := 60 + g.Normal(0, 0.4)
		if d.Observe(60, actual) {
			t.Fatalf("false drift at observation %d (window MSE %v)", i, d.WindowMSE())
		}
	}
	if d.Observations() != 200 {
		t.Errorf("observations = %d", d.Observations())
	}
}

func TestDriftDetectedOnBias(t *testing.T) {
	d, err := NewDriftDetector(20, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	g := mathx.NewRNG(2)
	// Healthy phase.
	for i := 0; i < 50; i++ {
		d.Observe(60, 60+g.Normal(0, 0.3))
	}
	if d.Drifted() {
		t.Fatal("drifted during healthy phase")
	}
	// Fans degrade: reality runs 3 °C hotter than the model.
	tripped := -1
	for i := 0; i < 40; i++ {
		if d.Observe(60, 63+g.Normal(0, 0.3)) {
			tripped = i
			break
		}
	}
	if tripped < 0 {
		t.Fatal("3 °C bias never detected")
	}
	// Must trip within roughly half a window: 9 (MSE crosses 1.0 once
	// ~1/9 of the window holds ~9°² residuals) — allow the full window.
	if tripped > 20 {
		t.Errorf("detection took %d observations, want <= window", tripped)
	}
}

func TestColdStartCannotTrip(t *testing.T) {
	d, err := NewDriftDetector(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Giant errors, but fewer than a window.
	for i := 0; i < 9; i++ {
		if d.Observe(0, 100) {
			t.Fatal("drift declared before window filled")
		}
	}
	if !d.Observe(0, 100) {
		t.Error("full window of huge errors should drift")
	}
}

func TestWindowMSEAndReset(t *testing.T) {
	d, err := NewDriftDetector(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(d.WindowMSE()) {
		t.Error("empty detector should report NaN MSE")
	}
	d.Observe(10, 12) // 4
	d.Observe(10, 10) // 0
	if got := d.WindowMSE(); got != 2 {
		t.Errorf("partial window MSE = %v, want 2", got)
	}
	d.Observe(10, 13) // 9
	d.Observe(10, 11) // 1
	if got := d.WindowMSE(); got != 3.5 {
		t.Errorf("full window MSE = %v, want 3.5", got)
	}
	// Ring rollover replaces the oldest (4): (0+9+1+16)/4 = 6.5.
	d.Observe(10, 14)
	if got := d.WindowMSE(); got != 6.5 {
		t.Errorf("rolled window MSE = %v, want 6.5", got)
	}
	d.Reset()
	if d.Observations() != 0 || d.Drifted() || !math.IsNaN(d.WindowMSE()) {
		t.Error("Reset incomplete")
	}
}

func TestDriftRecoveryAfterRetrain(t *testing.T) {
	d, err := NewDriftDetector(10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		d.Observe(60, 65) // badly drifted
	}
	if !d.Drifted() {
		t.Fatal("should be drifted")
	}
	d.Reset() // retrained
	for i := 0; i < 15; i++ {
		if d.Observe(65, 65.1) {
			t.Fatal("drift after retrain with good model")
		}
	}
}
