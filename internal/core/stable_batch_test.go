package core

import (
	"context"
	"math"
	"sync"
	"testing"

	"vmtherm/internal/dataset"
	"vmtherm/internal/workload"
)

// batchModel trains one small real model per test binary.
var (
	batchOnce sync.Once
	batchPred *StablePredictor
	batchRecs []dataset.Record
	batchErr  error
)

func testBatchModel(t *testing.T) (*StablePredictor, []dataset.Record) {
	t.Helper()
	batchOnce.Do(func() {
		cases, err := workload.GenerateCases(workload.DefaultGenOptions(), 23, "cb", 30)
		if err != nil {
			batchErr = err
			return
		}
		recs, err := dataset.Build(context.Background(), cases, dataset.DefaultBuildOptions(23))
		if err != nil {
			batchErr = err
			return
		}
		p, err := TrainStable(context.Background(), recs, FastStableConfig())
		if err != nil {
			batchErr = err
			return
		}
		batchPred, batchRecs = p, recs
	})
	if batchErr != nil {
		t.Fatal(batchErr)
	}
	return batchPred, batchRecs
}

func TestPredictBatchMatchesSingle(t *testing.T) {
	p, recs := testBatchModel(t)
	rows := make([][]float64, len(recs))
	for i, r := range recs {
		rows[i] = r.Features
	}
	got, err := p.PredictBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("got %d predictions for %d rows", len(got), len(rows))
	}
	for i, row := range rows {
		want, err := p.PredictFeatures(row)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got[i]-want) > 1e-9 {
			t.Errorf("row %d: batch %v vs single %v", i, got[i], want)
		}
	}
}

func TestPredictBatchEmpty(t *testing.T) {
	p, _ := testBatchModel(t)
	out, err := p.PredictBatch(nil)
	if err != nil || len(out) != 0 {
		t.Errorf("empty batch: out=%v err=%v", out, err)
	}
}

func TestPredictBatchBadRow(t *testing.T) {
	p, recs := testBatchModel(t)
	if _, err := p.PredictBatch([][]float64{recs[0].Features, {1, 2}}); err == nil {
		t.Error("wrong-dimension row accepted")
	}
}

func TestPredictBatchIntoMatchesBatch(t *testing.T) {
	p, recs := testBatchModel(t)
	rows := make([][]float64, len(recs))
	for i, r := range recs {
		rows[i] = r.Features
	}
	want, err := p.PredictBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	var s PredictScratch
	out := make([]float64, len(rows))
	// Two passes through one scratch: results must be identical and stable.
	for pass := 0; pass < 2; pass++ {
		if err := p.PredictBatchInto(rows, out, &s); err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("pass %d row %d: into %v vs batch %v", pass, i, out[i], want[i])
			}
		}
	}
	// Length mismatch must be rejected.
	if err := p.PredictBatchInto(rows, out[:1], &s); err == nil {
		t.Error("row/output length mismatch accepted")
	}
}

// TestPredictBatchIntoZeroAlloc pins the allocation-free contract of the
// prediction spine: with a warm scratch, scaling + SVM batch evaluation of a
// full round must not allocate at all.
func TestPredictBatchIntoZeroAlloc(t *testing.T) {
	p, recs := testBatchModel(t)
	rows := make([][]float64, len(recs))
	for i, r := range recs {
		rows[i] = r.Features
	}
	out := make([]float64, len(rows))
	var s PredictScratch
	if err := p.PredictBatchInto(rows, out, &s); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := p.PredictBatchInto(rows, out, &s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm PredictBatchInto allocates %.1f/op, want 0", allocs)
	}
}
