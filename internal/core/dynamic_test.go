package core

import (
	"math"
	"testing"

	"vmtherm/internal/testbed"
	"vmtherm/internal/timeseries"
	"vmtherm/internal/workload"
)

func TestNewCalibratorValidation(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.1} {
		if _, err := NewCalibrator(bad); err == nil {
			t.Errorf("lambda %v should fail", bad)
		}
	}
	if _, err := NewCalibrator(0); err != nil {
		t.Error("lambda 0 (no calibration) must be allowed")
	}
}

func TestCalibratorPaperExample(t *testing.T) {
	// Paper Eqs. (5)–(6): γ starts at 0; at t=15 the measurement differs
	// from ψ*(15) by dif, and γ becomes λ·dif.
	cal, err := NewCalibrator(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Gamma() != 0 {
		t.Fatal("γ must start at 0")
	}
	// measured 52, curve 50 → dif = 2 → γ = 1.6
	got := cal.Update(52, 50)
	if math.Abs(got-1.6) > 1e-12 {
		t.Errorf("γ after first update = %v, want 1.6", got)
	}
	// Second update accounts for existing γ: dif = 53 − (50 + 1.6) = 1.4;
	// γ = 1.6 + 0.8·1.4 = 2.72.
	got = cal.Update(53, 50)
	if math.Abs(got-2.72) > 1e-12 {
		t.Errorf("γ after second update = %v, want 2.72", got)
	}
	if cal.Updates() != 2 {
		t.Errorf("updates = %d", cal.Updates())
	}
	cal.Reset()
	if cal.Gamma() != 0 || cal.Updates() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestCalibratorZeroLambdaNeverMoves(t *testing.T) {
	cal, err := NewCalibrator(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		cal.Update(100, 0)
	}
	if cal.Gamma() != 0 {
		t.Errorf("γ with λ=0 = %v, want 0", cal.Gamma())
	}
}

func TestCalibratorConvergesToConstantOffset(t *testing.T) {
	// With a constant measurement offset, γ must converge to that offset.
	cal, err := NewCalibrator(0.8)
	if err != nil {
		t.Fatal(err)
	}
	const offset = 5.0
	for i := 0; i < 30; i++ {
		cal.Update(60+offset, 60)
	}
	if math.Abs(cal.Gamma()-offset) > 1e-6 {
		t.Errorf("γ = %v, want converged to %v", cal.Gamma(), offset)
	}
}

func TestDynamicConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*DynamicConfig)
		ok     bool
	}{
		{"default", func(*DynamicConfig) {}, true},
		{"negative lambda", func(c *DynamicConfig) { c.Lambda = -0.1 }, false},
		{"lambda over 1", func(c *DynamicConfig) { c.Lambda = 1.2 }, false},
		{"zero update", func(c *DynamicConfig) { c.UpdateEveryS = 0 }, false},
		{"zero gap", func(c *DynamicConfig) { c.GapS = 0 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultDynamicConfig()
			tt.mutate(&c)
			err := c.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate = %v, ok %v", err, tt.ok)
			}
		})
	}
}

func TestDynamicPredictorPaperWalkthrough(t *testing.T) {
	// Reproduce the paper's §II running example: Δ_gap=60, Δ_update=15.
	curve, err := NewCurve(20, 70, 600, 30)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := NewDynamicPredictor(curve, DefaultDynamicConfig())
	if err != nil {
		t.Fatal(err)
	}
	// At t=0 with γ=0 (Eq. 4): ψ(60) = ψ*(60).
	pred.Observe(0, curve.Value(0)) // perfect measurement → γ stays 0
	if got, want := pred.Predict(0), curve.Value(60); math.Abs(got-want) > 1e-12 {
		t.Errorf("ψ(60) = %v, want ψ*(60) = %v", got, want)
	}
	// At t=15 the measurement runs 2° hot → γ = 0.8·2 = 1.6 (Eq. 6), and
	// ψ(75) = ψ*(75) + 1.6 (Eq. 7).
	pred.Observe(15, curve.Value(15)+2)
	if math.Abs(pred.Gamma()-1.6) > 1e-12 {
		t.Errorf("γ = %v, want 1.6", pred.Gamma())
	}
	if got, want := pred.Predict(15), curve.Value(75)+1.6; math.Abs(got-want) > 1e-12 {
		t.Errorf("ψ(75) = %v, want %v", got, want)
	}
}

func TestObserveRespectsUpdateInterval(t *testing.T) {
	curve, err := NewCurve(20, 70, 600, 30)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := NewDynamicPredictor(curve, DynamicConfig{Lambda: 0.8, UpdateEveryS: 15, GapS: 60})
	if err != nil {
		t.Fatal(err)
	}
	pred.Observe(0, 25) // first observation always calibrates
	g1 := pred.Gamma()
	pred.Observe(5, 40) // too soon: ignored
	if pred.Gamma() != g1 {
		t.Error("observation inside Δ_update changed γ")
	}
	pred.Observe(15, 40) // 15 s elapsed: applies
	if pred.Gamma() == g1 {
		t.Error("observation at Δ_update boundary ignored")
	}
}

func TestNewDynamicPredictorValidation(t *testing.T) {
	good, _ := NewCurve(20, 70, 600, 30)
	if _, err := NewDynamicPredictor(Curve{}, DefaultDynamicConfig()); err == nil {
		t.Error("invalid curve should fail")
	}
	bad := DefaultDynamicConfig()
	bad.GapS = -1
	if _, err := NewDynamicPredictor(good, bad); err == nil {
		t.Error("invalid config should fail")
	}
}

// syntheticTrace builds an exponential warm-up with a given noise-free shape,
// which deliberately differs from the log curve.
func syntheticTrace(t *testing.T, phi0, stable, tau float64, duration, step float64) *timeseries.Series {
	t.Helper()
	s := timeseries.New()
	for tt := 0.0; tt <= duration; tt += step {
		v := stable + (phi0-stable)*math.Exp(-tt/tau)
		s.MustAppend(tt, v)
	}
	return s
}

func TestReplayCalibrationBeatsUncalibrated(t *testing.T) {
	// The simulator's transient is exponential while Eq. (3) is logarithmic,
	// so the raw curve is biased; calibration must shrink the error. This is
	// Fig. 1(b)'s claim.
	trace := syntheticTrace(t, 22, 75, 150, 1800, 5)
	curve, err := NewCurve(22, 75, 600, DefaultCurveDelta)
	if err != nil {
		t.Fatal(err)
	}
	with, err := Replay(trace, curve, DynamicConfig{Lambda: 0.8, UpdateEveryS: 15, GapS: 60})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Replay(trace, curve, DynamicConfig{Lambda: 0, UpdateEveryS: 15, GapS: 60})
	if err != nil {
		t.Fatal(err)
	}
	if with.MSE >= without.MSE {
		t.Errorf("calibrated MSE %v should beat uncalibrated %v", with.MSE, without.MSE)
	}
	if with.MAE >= without.MAE {
		t.Errorf("calibrated MAE %v should beat uncalibrated %v", with.MAE, without.MAE)
	}
}

func TestReplayPerfectCurveIsNearPerfect(t *testing.T) {
	// If the trace IS the pre-defined curve, replay error must be ~0 even
	// without calibration.
	curve, err := NewCurve(20, 60, 600, 30)
	if err != nil {
		t.Fatal(err)
	}
	s := timeseries.New()
	for tt := 0.0; tt <= 1200; tt += 5 {
		s.MustAppend(tt, curve.Value(tt))
	}
	res, err := Replay(s, curve, DynamicConfig{Lambda: 0, UpdateEveryS: 15, GapS: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.MSE > 1e-18 {
		t.Errorf("perfect-curve replay MSE = %v, want ~0", res.MSE)
	}
}

func TestReplayErrors(t *testing.T) {
	curve, _ := NewCurve(20, 60, 600, 30)
	if _, err := Replay(nil, curve, DefaultDynamicConfig()); err == nil {
		t.Error("nil trace should fail")
	}
	if _, err := Replay(timeseries.New(), curve, DefaultDynamicConfig()); err == nil {
		t.Error("empty trace should fail")
	}
	short := timeseries.New()
	short.MustAppend(0, 20)
	short.MustAppend(5, 21)
	if _, err := Replay(short, curve, DefaultDynamicConfig()); err == nil {
		t.Error("trace shorter than gap should fail")
	}
}

func TestReplayPointsBookkeeping(t *testing.T) {
	trace := syntheticTrace(t, 20, 60, 150, 600, 10)
	curve, _ := NewCurve(20, 60, 600, 30)
	res, err := Replay(trace, curve, DynamicConfig{Lambda: 0.8, UpdateEveryS: 20, GapS: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if math.Abs(p.Target-(p.MadeAt+50)) > 1e-9 {
			t.Fatalf("target %v != madeAt %v + gap", p.Target, p.MadeAt)
		}
		if p.Target > 600 {
			t.Fatalf("prediction target %v beyond trace end", p.Target)
		}
	}
}

func TestProfileTrace(t *testing.T) {
	trace := syntheticTrace(t, 25, 70, 100, 1800, 5)
	phi0, stable, err := ProfileTrace(trace, 600)
	if err != nil {
		t.Fatal(err)
	}
	if phi0 != 25 {
		t.Errorf("φ(0) = %v, want 25", phi0)
	}
	// After 6τ the exponential has converged; stable ≈ 70.
	if math.Abs(stable-70) > 0.2 {
		t.Errorf("ψ_stable = %v, want ≈70", stable)
	}
	if _, _, err := ProfileTrace(nil, 600); err == nil {
		t.Error("nil trace should fail")
	}
	if _, _, err := ProfileTrace(timeseries.New(), 600); err == nil {
		t.Error("empty trace should fail")
	}
	short := timeseries.New()
	short.MustAppend(0, 20)
	if _, _, err := ProfileTrace(short, 600); err == nil {
		t.Error("trace ending before t_break should fail")
	}
}

func TestReplayOnSimulatedRig(t *testing.T) {
	// End-to-end: a real simulated trace, calibrated dynamic prediction
	// should land in the paper's accuracy band (MSE well under ~2).
	opts := workload.DefaultGenOptions()
	opts.VMCountMin, opts.VMCountMax = 6, 6
	opts.FanChoices = []int{4}
	c, err := workload.GenerateCase(opts, 31, "replayrig")
	if err != nil {
		t.Fatal(err)
	}
	rig, err := testbed.New(c, testbed.Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rig.Run(testbed.DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	phi0, stable, err := ProfileTrace(res.SensorTemps, 600)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := NewCurve(phi0, stable, 600, DefaultCurveDelta)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Replay(res.SensorTemps, curve, DefaultDynamicConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rr.MSE > 2.5 {
		t.Errorf("calibrated replay MSE on simulated rig = %v, want < 2.5", rr.MSE)
	}
}

func TestEstimateTBreak(t *testing.T) {
	// Exponential with tau=120: |v-final| <= 0.5 once t >= tau·ln(span/0.5).
	trace := syntheticTrace(t, 22, 70, 120, 1800, 5)
	got, err := EstimateTBreak(trace, 120, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// span 48, analytic settle ≈ 120·ln(48/0.5) ≈ 548 s; the last-window
	// mean shifts the threshold slightly, so accept a band.
	if got < 400 || got > 700 {
		t.Errorf("estimated t_break = %v, want ≈550 (paper settles on 600)", got)
	}
	// A tighter tolerance must push the estimate later.
	tight, err := EstimateTBreak(trace, 120, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if tight <= got {
		t.Errorf("tighter tol should settle later: %v vs %v", tight, got)
	}
}

func TestEstimateTBreakAlreadyStable(t *testing.T) {
	s := timeseries.New()
	for tt := 0.0; tt <= 600; tt += 5 {
		s.MustAppend(tt, 50)
	}
	got, err := EstimateTBreak(s, 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("flat trace t_break = %v, want 0", got)
	}
}

func TestEstimateTBreakNeverSettles(t *testing.T) {
	s := timeseries.New()
	for tt := 0.0; tt <= 600; tt += 5 {
		s.MustAppend(tt, tt) // unbounded ramp
	}
	if _, err := EstimateTBreak(s, 50, 0.5); err == nil {
		t.Error("ramp should never settle")
	}
}

func TestEstimateTBreakValidation(t *testing.T) {
	trace := syntheticTrace(t, 22, 70, 120, 600, 5)
	if _, err := EstimateTBreak(nil, 100, 0.5); err == nil {
		t.Error("nil trace should fail")
	}
	if _, err := EstimateTBreak(trace, 0, 0.5); err == nil {
		t.Error("zero window should fail")
	}
	if _, err := EstimateTBreak(trace, 100, 0); err == nil {
		t.Error("zero tol should fail")
	}
}

func TestEstimateTBreakOnSimulatedRig(t *testing.T) {
	// The reference server should settle well before the paper's 600 s.
	opts := workload.DefaultGenOptions()
	opts.VMCountMin, opts.VMCountMax = 6, 6
	c, err := workload.GenerateCase(opts, 51, "tbreak")
	if err != nil {
		t.Fatal(err)
	}
	rig, err := testbed.New(c, testbed.Options{Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rig.Run(testbed.DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Use the noise-free trace; sensor noise inflates the excursion check.
	got, err := EstimateTBreak(res.TrueTemps, 300, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if got > 600 {
		t.Errorf("simulated server settles at %v s, should be within the paper's 600 s", got)
	}
}
