package core

import (
	"fmt"
	"math"
)

// DriftDetector watches a deployed stable-model's prediction residuals and
// signals when the model no longer matches reality (hardware aging, fan
// replacement, CRAC retuning, workload-mix shift) — the trigger for
// re-running the training pipeline. It keeps a sliding window of squared
// errors and raises once the windowed MSE exceeds a threshold.
//
// The paper trains offline and deploys online; drift detection closes the
// loop a production deployment needs.
type DriftDetector struct {
	window    int
	threshold float64
	residuals []float64 // ring buffer of squared errors
	next      int
	filled    bool
	total     int
}

// NewDriftDetector creates a detector: drift is declared when the MSE over
// the last window observations exceeds mseThreshold. window must be >= 2 so
// a single outlier cannot trip it alone.
func NewDriftDetector(window int, mseThreshold float64) (*DriftDetector, error) {
	if window < 2 {
		return nil, fmt.Errorf("core: drift window %d < 2", window)
	}
	if mseThreshold <= 0 {
		return nil, fmt.Errorf("core: drift threshold %v must be > 0", mseThreshold)
	}
	return &DriftDetector{
		window:    window,
		threshold: mseThreshold,
		residuals: make([]float64, window),
	}, nil
}

// Observe records one (predicted, actual) pair and reports whether the
// windowed MSE currently exceeds the threshold. Drift is only declared once
// the window is full, so cold starts cannot false-positive.
func (d *DriftDetector) Observe(predicted, actual float64) bool {
	r := predicted - actual
	d.residuals[d.next] = r * r
	d.next = (d.next + 1) % d.window
	if d.next == 0 {
		d.filled = true
	}
	d.total++
	return d.Drifted()
}

// Drifted reports whether the current full window exceeds the threshold.
func (d *DriftDetector) Drifted() bool {
	if !d.filled {
		return false
	}
	return d.WindowMSE() > d.threshold
}

// WindowMSE returns the MSE over the retained window (over the samples seen
// so far if the window has not filled yet; NaN before any samples).
func (d *DriftDetector) WindowMSE() float64 {
	n := d.window
	if !d.filled {
		n = d.next
	}
	if n == 0 {
		return math.NaN()
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.residuals[i]
	}
	return sum / float64(n)
}

// Observations returns how many pairs have been observed in total.
func (d *DriftDetector) Observations() int { return d.total }

// Reset clears the window (call after retraining).
func (d *DriftDetector) Reset() {
	for i := range d.residuals {
		d.residuals[i] = 0
	}
	d.next = 0
	d.filled = false
	d.total = 0
}
