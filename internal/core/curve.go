package core

import (
	"fmt"
	"math"
)

// Curve is the paper's Eq. (3): a pre-defined coarse-grained temperature
// trajectory anchored at the pre-experiment temperature φ(0) and the
// predicted stable temperature ψ_stable, reached at t_break:
//
//	ψ*(t) = φ(0) + (ψ_stable − φ(0)) · ln(1 + t/δ) / ln(1 + t_break/δ)   0 ≤ t ≤ t_break
//	ψ*(t) = ψ_stable                                                     t > t_break
//
// δ shapes the warm-up rate (small δ = steeper initial rise). The camera-
// ready equation is typographically damaged; this reconstruction satisfies
// all constraints stated in the prose — see DESIGN.md §1.
type Curve struct {
	// Phi0 is the measured temperature at experiment start, φ(0).
	Phi0 float64
	// Stable is ψ_stable, typically supplied by a StablePredictor.
	Stable float64
	// TBreakS is the break-in time after which temperature is stable.
	TBreakS float64
	// DeltaS is the curvature parameter δ in seconds.
	DeltaS float64
}

// DefaultCurveDelta is the δ used across experiments (ablated in
// BenchmarkAblationCurveDelta).
const DefaultCurveDelta = 30.0

// NewCurve builds a validated Eq. (3) curve.
func NewCurve(phi0, stable, tBreakS, deltaS float64) (Curve, error) {
	c := Curve{Phi0: phi0, Stable: stable, TBreakS: tBreakS, DeltaS: deltaS}
	return c, c.Validate()
}

// Validate checks curve parameters.
func (c Curve) Validate() error {
	if !(c.TBreakS > 0) || math.IsInf(c.TBreakS, 0) {
		return fmt.Errorf("core: t_break must be finite and > 0, got %v", c.TBreakS)
	}
	if !(c.DeltaS > 0) || math.IsInf(c.DeltaS, 0) {
		return fmt.Errorf("core: delta must be finite and > 0, got %v", c.DeltaS)
	}
	if math.IsNaN(c.Phi0) || math.IsNaN(c.Stable) {
		return fmt.Errorf("core: curve anchors NaN (phi0 %v, stable %v)", c.Phi0, c.Stable)
	}
	return nil
}

// Value evaluates ψ*(t). Times before 0 clamp to φ(0).
func (c Curve) Value(t float64) float64 {
	if t <= 0 {
		return c.Phi0
	}
	if t >= c.TBreakS {
		return c.Stable
	}
	frac := math.Log1p(t/c.DeltaS) / math.Log1p(c.TBreakS/c.DeltaS)
	return c.Phi0 + (c.Stable-c.Phi0)*frac
}
