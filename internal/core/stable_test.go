package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"vmtherm/internal/dataset"
	"vmtherm/internal/mathx"
	"vmtherm/internal/workload"
)

// buildRecords generates and simulates n cases; cached per test run via the
// deterministic seeds, cheap enough to recompute.
func buildRecords(t *testing.T, n int, seed int64) []dataset.Record {
	t.Helper()
	cases, err := workload.GenerateCases(workload.DefaultGenOptions(), seed, "core", n)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := dataset.Build(context.Background(), cases, dataset.DefaultBuildOptions(seed))
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestTrainStableEmptyRecords(t *testing.T) {
	if _, err := TrainStable(context.Background(), nil, FastStableConfig()); err == nil {
		t.Error("no records should fail")
	}
}

func TestTrainStableAccuracy(t *testing.T) {
	// The headline claim scaled down for unit-test time: train on 60
	// simulated cases, test on 12 held-out ones, MSE should land in the
	// paper's band (≈1, certainly < 2). The full 160/20 version is Fig 1(a).
	records := buildRecords(t, 72, 5)
	train, test, err := dataset.Split(records, 12.0/72, 99)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := TrainStable(context.Background(), train, FastStableConfig())
	if err != nil {
		t.Fatal(err)
	}
	var ps, as []float64
	for _, r := range test {
		p, err := pred.PredictFeatures(r.Features)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
		as = append(as, r.StableTemp)
	}
	mse, err := mathx.MSE(ps, as)
	if err != nil {
		t.Fatal(err)
	}
	if mse > 2.0 {
		t.Errorf("held-out MSE = %v, want < 2.0 (paper band ≈1.1)", mse)
	}
	if pred.NumSV() == 0 {
		t.Error("trained model has no support vectors")
	}
	if pred.CVMSE() <= 0 {
		t.Errorf("CV MSE = %v, want > 0 (noisy data)", pred.CVMSE())
	}
}

func TestPredictCaseMatchesPredictFeatures(t *testing.T) {
	records := buildRecords(t, 24, 6)
	pred, err := TrainStable(context.Background(), records, FastStableConfig())
	if err != nil {
		t.Fatal(err)
	}
	cases, err := workload.GenerateCases(workload.DefaultGenOptions(), 6, "core", 24)
	if err != nil {
		t.Fatal(err)
	}
	c := cases[3]
	viaCase, err := pred.PredictCase(c, 1800)
	if err != nil {
		t.Fatal(err)
	}
	features, err := dataset.Encode(c, 1800)
	if err != nil {
		t.Fatal(err)
	}
	viaFeatures, err := pred.PredictFeatures(features)
	if err != nil {
		t.Fatal(err)
	}
	if viaCase != viaFeatures {
		t.Errorf("PredictCase %v != PredictFeatures %v", viaCase, viaFeatures)
	}
}

func TestPredictFeaturesWrongDim(t *testing.T) {
	records := buildRecords(t, 24, 7)
	pred, err := TrainStable(context.Background(), records, FastStableConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pred.PredictFeatures([]float64{1, 2}); err == nil {
		t.Error("wrong-dimension features should fail")
	}
}

func TestStableSaveLoadRoundTrip(t *testing.T) {
	records := buildRecords(t, 24, 8)
	pred, err := TrainStable(context.Background(), records, FastStableConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := pred.Save(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := LoadStable(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Best() != pred.Best() {
		t.Errorf("grid point lost: %+v vs %+v", back.Best(), pred.Best())
	}
	if math.Abs(back.CVMSE()-pred.CVMSE()) > 1e-12 {
		t.Error("cv mse lost")
	}
	for _, r := range records[:5] {
		a, err := pred.PredictFeatures(r.Features)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.PredictFeatures(r.Features)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("round-trip prediction differs: %v vs %v", a, b)
		}
	}
}

func TestLoadStableRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad magic":   "not_a_model v9\n",
		"no model":    "vmtherm_stable_model v1\nscale_lower -1\n",
		"bad header":  "vmtherm_stable_model v1\nonlykey\nmodel:\n",
		"missing key": "vmtherm_stable_model v1\nscale_lower -1\nmodel:\n",
	}
	for name, text := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := LoadStable(strings.NewReader(text)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestTrainStableCancellation(t *testing.T) {
	records := buildRecords(t, 24, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TrainStable(ctx, records, DefaultStableConfig()); err == nil {
		t.Error("cancelled context should fail")
	}
}
