package core

import (
	"errors"
	"fmt"
	"math"

	"vmtherm/internal/mathx"
	"vmtherm/internal/timeseries"
)

// Calibrator maintains the paper's runtime calibration γ (Eqs. 4–6):
//
//	dif = φ(t) − (ψ*(t) + γ)
//	γ  ← γ + λ·dif
//
// λ = 0 disables calibration (γ stays 0), which is the paper's
// "without calibration" baseline in Fig. 1(b).
type Calibrator struct {
	lambda  float64
	gamma   float64
	updates int
}

// DefaultLambda is the paper's learning rate.
const DefaultLambda = 0.8

// NewCalibrator returns a calibrator with learning rate lambda in [0, 1].
func NewCalibrator(lambda float64) (*Calibrator, error) {
	if lambda < 0 || lambda > 1 {
		return nil, fmt.Errorf("core: lambda %v outside [0,1]", lambda)
	}
	return &Calibrator{lambda: lambda}, nil
}

// Update applies Eqs. (5)–(6) for a measurement and the corresponding
// pre-defined curve value, returning the new γ.
func (c *Calibrator) Update(measured, curveValue float64) float64 {
	dif := measured - (curveValue + c.gamma)
	c.gamma += c.lambda * dif
	c.updates++
	return c.gamma
}

// Gamma returns the current calibration.
func (c *Calibrator) Gamma() float64 { return c.gamma }

// Updates returns how many calibration updates have been applied.
func (c *Calibrator) Updates() int { return c.updates }

// Reset clears the calibration back to γ = 0.
func (c *Calibrator) Reset() { c.gamma = 0; c.updates = 0 }

// DynamicConfig parameterizes online dynamic prediction (Eq. 8).
type DynamicConfig struct {
	// Lambda is the calibration learning rate (paper: 0.8).
	Lambda float64
	// UpdateEveryS is Δ_update, the calibration interval (paper example: 15 s).
	UpdateEveryS float64
	// GapS is Δ_gap, the prediction horizon (paper example: 60 s).
	GapS float64
}

// DefaultDynamicConfig uses the paper's running-example parameters.
func DefaultDynamicConfig() DynamicConfig {
	return DynamicConfig{Lambda: DefaultLambda, UpdateEveryS: 15, GapS: 60}
}

// Validate checks the configuration.
func (c DynamicConfig) Validate() error {
	if c.Lambda < 0 || c.Lambda > 1 {
		return fmt.Errorf("core: lambda %v outside [0,1]", c.Lambda)
	}
	if c.UpdateEveryS <= 0 {
		return fmt.Errorf("core: update interval must be > 0, got %v", c.UpdateEveryS)
	}
	if c.GapS <= 0 {
		return fmt.Errorf("core: prediction gap must be > 0, got %v", c.GapS)
	}
	return nil
}

// DynamicPredictor predicts CPU temperature Δ_gap seconds ahead by combining
// the pre-defined curve with runtime calibration (Eq. 8):
//
//	ψ(t + Δ_gap) = ψ*(t + Δ_gap) + γ
//
// Feed measurements through Observe; γ updates at most once per Δ_update.
type DynamicPredictor struct {
	curve      Curve
	cal        *Calibrator
	cfg        DynamicConfig
	lastUpdate float64
	seeded     bool
}

// NewDynamicPredictor builds a predictor from a validated curve and config.
func NewDynamicPredictor(curve Curve, cfg DynamicConfig) (*DynamicPredictor, error) {
	if err := curve.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cal, err := NewCalibrator(cfg.Lambda)
	if err != nil {
		return nil, err
	}
	return &DynamicPredictor{curve: curve, cal: cal, cfg: cfg}, nil
}

// Observe feeds a measurement φ(t). The calibration updates when at least
// Δ_update seconds have elapsed since the previous update (and on the first
// observation, matching the paper's γ=0 start at t=0).
func (d *DynamicPredictor) Observe(t, measured float64) {
	if d.seeded && t-d.lastUpdate < d.cfg.UpdateEveryS {
		return
	}
	d.cal.Update(measured, d.curve.Value(t))
	d.lastUpdate = t
	d.seeded = true
}

// Predict returns ψ(now + Δ_gap) per Eq. (8).
func (d *DynamicPredictor) Predict(now float64) float64 {
	return d.PredictAt(now + d.cfg.GapS)
}

// PredictAt returns ψ(target) = ψ*(target) + γ for an arbitrary target time.
func (d *DynamicPredictor) PredictAt(target float64) float64 {
	return d.curve.Value(target) + d.cal.Gamma()
}

// Gamma exposes the current calibration (for instrumentation).
func (d *DynamicPredictor) Gamma() float64 { return d.cal.Gamma() }

// Config returns the predictor's configuration.
func (d *DynamicPredictor) Config() DynamicConfig { return d.cfg }

// PredictorState is the complete serializable state of a DynamicPredictor —
// everything needed to rebuild one that behaves bit-identically: the curve
// anchors, the configuration, the calibration γ and its update count, and
// the Δ_update gating clock. Used by the checkpoint layer for warm restarts.
type PredictorState struct {
	Curve       Curve
	Config      DynamicConfig
	Gamma       float64
	Updates     int
	LastUpdateS float64
	Seeded      bool
}

// State captures the predictor's full serializable state.
func (d *DynamicPredictor) State() PredictorState {
	return PredictorState{
		Curve:       d.curve,
		Config:      d.cfg,
		Gamma:       d.cal.gamma,
		Updates:     d.cal.updates,
		LastUpdateS: d.lastUpdate,
		Seeded:      d.seeded,
	}
}

// RestorePredictor rebuilds a predictor from a captured state. The restored
// predictor observes, calibrates and predicts exactly as the original would
// have from the capture point onward.
func RestorePredictor(st PredictorState) (*DynamicPredictor, error) {
	d, err := NewDynamicPredictor(st.Curve, st.Config)
	if err != nil {
		return nil, err
	}
	if st.Updates < 0 {
		return nil, fmt.Errorf("core: negative calibration update count %d", st.Updates)
	}
	d.cal.gamma = st.Gamma
	d.cal.updates = st.Updates
	d.lastUpdate = st.LastUpdateS
	d.seeded = st.Seeded
	return d, nil
}

// ReplayPoint is one prediction/outcome pair from a trace replay.
type ReplayPoint struct {
	// MadeAt is when the prediction was issued.
	MadeAt float64
	// Target is MadeAt + Δ_gap.
	Target float64
	// Predicted is ψ(Target) issued at MadeAt.
	Predicted float64
	// Actual is the measured temperature at Target (interpolated).
	Actual float64
}

// ReplayResult summarizes a dynamic-prediction replay over a trace.
type ReplayResult struct {
	Points []ReplayPoint
	MSE    float64
	MAE    float64
}

// Replay evaluates a dynamic predictor over a recorded temperature trace,
// simulating online operation: at every sample time the predictor observes
// the measurement (calibrating on its Δ_update schedule) and issues a
// prediction Δ_gap ahead; predictions whose target falls beyond the trace
// are discarded. This is the harness behind Fig. 1(b) and Fig. 1(c).
func Replay(trace *timeseries.Series, curve Curve, cfg DynamicConfig) (*ReplayResult, error) {
	if trace == nil || trace.Len() == 0 {
		return nil, errors.New("core: empty trace")
	}
	pred, err := NewDynamicPredictor(curve, cfg)
	if err != nil {
		return nil, err
	}
	last, err := trace.Last()
	if err != nil {
		return nil, err
	}
	res := &ReplayResult{}
	for i := 0; i < trace.Len(); i++ {
		p := trace.At(i)
		pred.Observe(p.T, p.V)
		target := p.T + cfg.GapS
		if target > last.T {
			continue
		}
		predicted := pred.PredictAt(target)
		actual, err := trace.ValueAt(target)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, ReplayPoint{
			MadeAt:    p.T,
			Target:    target,
			Predicted: predicted,
			Actual:    actual,
		})
	}
	if len(res.Points) == 0 {
		return nil, fmt.Errorf("core: trace too short for gap %v", cfg.GapS)
	}
	preds := make([]float64, len(res.Points))
	acts := make([]float64, len(res.Points))
	for i, pt := range res.Points {
		preds[i] = pt.Predicted
		acts[i] = pt.Actual
	}
	if res.MSE, err = mathx.MSE(preds, acts); err != nil {
		return nil, err
	}
	if res.MAE, err = mathx.MAE(preds, acts); err != nil {
		return nil, err
	}
	return res, nil
}

// EstimateTBreak deduces the break-in time from a measured trace, the way
// the paper "deduced [600 s] from experiments": it returns the earliest
// sample time after which every observation stays within tol of the final
// settled value (the mean of the last settleWin seconds). An unsettled
// trace is an error.
func EstimateTBreak(trace *timeseries.Series, settleWin, tol float64) (float64, error) {
	if trace == nil || trace.Len() == 0 {
		return 0, errors.New("core: empty trace")
	}
	if settleWin <= 0 || tol <= 0 {
		return 0, fmt.Errorf("core: invalid settle window %v / tol %v", settleWin, tol)
	}
	last, err := trace.Last()
	if err != nil {
		return 0, err
	}
	final, err := trace.MeanAfter(last.T - settleWin)
	if err != nil {
		return 0, err
	}
	// Walk backwards: the break time is just after the last excursion.
	breakAt := 0.0
	settled := true
	for i := trace.Len() - 1; i >= 0; i-- {
		p := trace.At(i)
		if math.Abs(p.V-final) > tol {
			if i+1 < trace.Len() {
				breakAt = trace.At(i + 1).T
			} else {
				settled = false
			}
			break
		}
	}
	if !settled {
		return 0, fmt.Errorf("core: trace never settles within tol %v", tol)
	}
	return breakAt, nil
}

// ProfileTrace extracts the Eq. (1)/(3) anchors from a measured trace:
// φ(0) is the first observation, ψ_stable the mean after tBreak.
func ProfileTrace(trace *timeseries.Series, tBreakS float64) (phi0, stable float64, err error) {
	if trace == nil || trace.Len() == 0 {
		return 0, 0, errors.New("core: empty trace")
	}
	first, err := trace.First()
	if err != nil {
		return 0, 0, err
	}
	stable, err = trace.MeanAfter(tBreakS)
	if err != nil {
		return 0, 0, fmt.Errorf("core: no samples after t_break %v: %w", tBreakS, err)
	}
	if math.IsNaN(stable) {
		return 0, 0, errors.New("core: NaN stable temperature")
	}
	return first.V, stable, nil
}
