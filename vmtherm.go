// Package vmtherm is a Go reproduction of "Virtual Machine Level Temperature
// Profiling and Prediction in Cloud Datacenters" (Wu et al., ICDCS 2016).
//
// It predicts per-server CPU temperature in virtualized datacenters two
// ways:
//
//   - Stable prediction: an ε-SVR (LIBSVM-equivalent, RBF kernel, grid-
//     searched with k-fold cross-validation) maps records of server
//     capacity, fan status, VM/task deployment and environment temperature
//     to the post-break-in stable CPU temperature ψ_stable (paper Eqs. 1–2).
//
//   - Dynamic prediction: a pre-defined saturation curve anchored at the
//     start temperature and ψ_stable, calibrated online every Δ_update
//     seconds with learning rate λ, predicts temperature Δ_gap seconds
//     ahead (paper Eqs. 3–8) — including through VM migrations.
//
// Because the paper's physical testbed is not reproducible offline, the
// package ships a complete simulated substrate: an RC-network thermal
// simulator, a VMM with live migration, workload generators, a telemetry
// pipeline and a datacenter model (see DESIGN.md for the substitution
// argument). The top-level API below is a thin facade over the internal
// packages; examples/ and cmd/ show it end to end.
//
// Quickstart:
//
//	cases, _ := vmtherm.GenerateCases(vmtherm.DefaultGenOptions(), 1, "exp", 60)
//	records, _ := vmtherm.BuildDataset(ctx, cases, vmtherm.DefaultBuildOptions(1))
//	model, _ := vmtherm.TrainStable(ctx, records, vmtherm.FastStableConfig())
//	temp, _ := model.PredictCase(cases[0], 1800)
package vmtherm

import (
	"context"

	"vmtherm/internal/core"
	"vmtherm/internal/dataset"
	"vmtherm/internal/testbed"
	"vmtherm/internal/thermal"
	"vmtherm/internal/timeseries"
	"vmtherm/internal/workload"
)

// Re-exported types. Aliases keep one canonical implementation in the
// internal packages while giving users a single import.
type (
	// Case is one experiment: host shape, cooling, environment, VMs.
	Case = workload.Case
	// VMSpec describes one VM with its tasks.
	VMSpec = workload.VMSpec
	// TaskSpec pairs a task with its load profile.
	TaskSpec = workload.TaskSpec
	// GenOptions bounds the randomized case generator.
	GenOptions = workload.GenOptions

	// Record is one Eq. (2) training example.
	Record = dataset.Record
	// BuildOptions configures dataset generation from simulation.
	BuildOptions = dataset.BuildOptions

	// StableConfig configures ψ_stable training.
	StableConfig = core.StableConfig
	// StablePredictor is the trained SVM pipeline.
	StablePredictor = core.StablePredictor
	// Curve is the paper's Eq. (3) pre-defined trajectory.
	Curve = core.Curve
	// DynamicConfig holds λ, Δ_update and Δ_gap.
	DynamicConfig = core.DynamicConfig
	// DynamicPredictor is the calibrated online predictor (Eq. 8).
	DynamicPredictor = core.DynamicPredictor
	// ReplayResult scores a dynamic predictor over a recorded trace.
	ReplayResult = core.ReplayResult

	// Rig is a runnable simulated experiment.
	Rig = testbed.Rig
	// RigOptions seeds and parameterizes a rig.
	RigOptions = testbed.Options
	// RunConfig controls one experiment run.
	RunConfig = testbed.RunConfig
	// RunResult holds an experiment's recorded traces.
	RunResult = testbed.Result

	// Series is a timestamped sample sequence.
	Series = timeseries.Series
	// ServerParams configures the thermal server model.
	ServerParams = thermal.ServerParams
	// SensorParams configures the sensor error model.
	SensorParams = thermal.SensorParams
)

// TBreakSeconds is the paper's break-in time t_break (Eq. 1).
const TBreakSeconds = 600.0

// DefaultGenOptions mirrors the paper's evaluation: 2–12 VMs, 2–6 fans,
// 18–28 °C ambient.
func DefaultGenOptions() GenOptions { return workload.DefaultGenOptions() }

// GenerateCase produces one deterministic randomized experiment case.
func GenerateCase(opts GenOptions, seed int64, name string) (Case, error) {
	return workload.GenerateCase(opts, seed, name)
}

// GenerateCases produces n deterministic randomized cases.
func GenerateCases(opts GenOptions, seed int64, base string, n int) ([]Case, error) {
	return workload.GenerateCases(opts, seed, base, n)
}

// DefaultBuildOptions mirrors the paper's experiment protocol (1800 s runs,
// t_break = 600 s).
func DefaultBuildOptions(seed int64) BuildOptions { return dataset.DefaultBuildOptions(seed) }

// BuildDataset runs every case on a simulated rig and returns Eq. (2)
// records.
func BuildDataset(ctx context.Context, cases []Case, opts BuildOptions) ([]Record, error) {
	return dataset.Build(ctx, cases, opts)
}

// EncodeCase builds the Eq. (2) feature vector for one workload case, the
// row format PredictFeatures/PredictBatch and the prediction service accept.
func EncodeCase(c Case, horizonS float64) ([]float64, error) {
	return dataset.Encode(c, horizonS)
}

// SplitDataset shuffles records deterministically into train/test.
func SplitDataset(records []Record, testFrac float64, seed int64) (train, test []Record, err error) {
	return dataset.Split(records, testFrac, seed)
}

// DefaultStableConfig is the paper's full pipeline (large grid, 10-fold CV).
func DefaultStableConfig() StableConfig { return core.DefaultStableConfig() }

// FastStableConfig is a reduced grid for interactive use and tests.
func FastStableConfig() StableConfig { return core.FastStableConfig() }

// TrainStable fits the scaler + grid-searched ε-SVR pipeline.
func TrainStable(ctx context.Context, records []Record, cfg StableConfig) (*StablePredictor, error) {
	return core.TrainStable(ctx, records, cfg)
}

// LoadStable reads a model saved with StablePredictor.Save.
var LoadStable = core.LoadStable

// NewCurve builds the Eq. (3) pre-defined trajectory.
func NewCurve(phi0, stable, tBreakS, deltaS float64) (Curve, error) {
	return core.NewCurve(phi0, stable, tBreakS, deltaS)
}

// DefaultCurveDelta is the default curvature δ.
const DefaultCurveDelta = core.DefaultCurveDelta

// DefaultDynamicConfig is the paper's λ=0.8, Δ_update=15 s, Δ_gap=60 s.
func DefaultDynamicConfig() DynamicConfig { return core.DefaultDynamicConfig() }

// NewDynamicPredictor builds the calibrated online predictor.
func NewDynamicPredictor(curve Curve, cfg DynamicConfig) (*DynamicPredictor, error) {
	return core.NewDynamicPredictor(curve, cfg)
}

// Replay scores a dynamic configuration over a recorded trace, simulating
// online operation.
func Replay(trace *Series, curve Curve, cfg DynamicConfig) (*ReplayResult, error) {
	return core.Replay(trace, curve, cfg)
}

// ProfileTrace extracts φ(0) and ψ_stable from a measured trace.
func ProfileTrace(trace *Series, tBreakS float64) (phi0, stable float64, err error) {
	return core.ProfileTrace(trace, tBreakS)
}

// NewRig assembles a runnable simulated experiment from a case.
func NewRig(c Case, opts RigOptions) (*Rig, error) { return testbed.New(c, opts) }

// DefaultRunConfig is the paper's 1800 s experiment shape.
func DefaultRunConfig() RunConfig { return testbed.DefaultRunConfig() }
