module vmtherm

go 1.24
