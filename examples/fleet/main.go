// Fleet: the closed thermal control loop at rack scale — the paper's
// prediction feeding proactive management. A 2-rack × 8-host fleet streams
// telemetry into per-host dynamic sessions; one machine is deliberately
// overloaded. The control plane flags it as a hotspot from its *predicted*
// Δ_gap-ahead temperature before the measured temperature crosses the
// threshold, and migrates load away before the hotspot materializes.
//
// Run with: go run ./examples/fleet
package main

import (
	"context"
	"fmt"
	"log"

	"vmtherm"
)

const (
	thresholdC = 70.0
	seed       = 42
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	fmt.Println("training stable model on 24 simulated experiments...")
	cases, err := vmtherm.GenerateCases(vmtherm.DefaultGenOptions(), seed, "train", 24)
	if err != nil {
		return err
	}
	records, err := vmtherm.BuildDataset(ctx, cases, vmtherm.DefaultBuildOptions(seed))
	if err != nil {
		return err
	}
	model, err := vmtherm.TrainStable(ctx, records, vmtherm.FastStableConfig())
	if err != nil {
		return err
	}

	cfg := vmtherm.DefaultFleetConfig()
	cfg.Racks = 2
	cfg.HostsPerRack = 8
	cfg.ThresholdC = thresholdC
	cfg.MaxMigrationsPerRound = 1
	cfg.Seed = seed
	ctl, err := vmtherm.NewFleet(cfg, vmtherm.FleetStablePredictor(model, 1800))
	if err != nil {
		return err
	}

	// Overload one machine: 6 × 4-vCPU VMs running flat-out.
	for v := 0; v < 6; v++ {
		if err := ctl.PlaceAt("r0-h0", vmtherm.FleetHeavyVMSpec(fmt.Sprintf("hot-%02d", v), 4, 8)); err != nil {
			return err
		}
	}

	fmt.Printf("\n16-host fleet, threshold %.0f °C, Δ_update %.0f s, Δ_gap %.0f s; host r0-h0 overloaded\n\n",
		thresholdC, cfg.UpdateEveryS, cfg.GapS)
	flagged := false
	for round := 1; round <= 24; round++ {
		rep, err := ctl.RunRound()
		if err != nil {
			return err
		}
		die, err := ctl.MeasuredDieTemp("r0-h0")
		if err != nil {
			return err
		}
		snap := ctl.Hotspots()
		mark := ""
		if len(snap.Hotspots) > 0 && !flagged {
			flagged = true
			mark = fmt.Sprintf("  ← flagged from prediction (measured only %.1f °C)", die)
		} else if rep.AppliedMoves > 0 {
			mark = "  ← migrated load away"
		}
		fmt.Printf("round %2d t=%4.0fs  measured %.1f °C  predicted(+%.0fs) %.1f °C  hotspots %d  moves %d%s\n",
			rep.Round, rep.SimTimeS, die, cfg.GapS, snap.Predicted["r0-h0"], rep.Hotspots, rep.AppliedMoves, mark)
	}
	fmt.Println("\nthe loop acts on predicted temperature: flagged rounds before the measured crossing, then drained by migration.")
	return nil
}
