// Whatif: capacity planning with the trained model — predict stable CPU
// temperature for a fixed deployment under hypothetical fan failures and
// CRAC setpoint changes, then validate two cells against full simulation.
// This is the "substantial value to decision making" use the paper claims
// for proactive prediction.
//
// Run with: go run ./examples/whatif
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"vmtherm"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	const seed = 23

	// Train on a corpus that covers the what-if ranges.
	gen := vmtherm.DefaultGenOptions()
	gen.FanChoices = []int{1, 2, 3, 4, 5, 6}
	gen.AmbientMinC, gen.AmbientMaxC = 16, 32
	trainCases, err := vmtherm.GenerateCases(gen, seed, "train", 90)
	if err != nil {
		return err
	}
	fmt.Println("training stable model on 90 simulated experiments...")
	records, err := vmtherm.BuildDataset(ctx, trainCases, vmtherm.DefaultBuildOptions(seed))
	if err != nil {
		return err
	}
	model, err := vmtherm.TrainStable(ctx, records, vmtherm.FastStableConfig())
	if err != nil {
		return err
	}

	// The deployment under study: a busy 8-VM server.
	opts := vmtherm.DefaultGenOptions()
	opts.VMCountMin, opts.VMCountMax = 8, 8
	study, err := vmtherm.GenerateCase(opts, seed, "deployment")
	if err != nil {
		return err
	}
	fmt.Printf("deployment: %d VMs, %d tasks\n\n", len(study.VMs), study.NumTasks())

	fans := []int{1, 2, 3, 4, 6}
	ambients := []float64{18, 22, 26, 30}

	fmt.Printf("predicted ψ_stable (°C) by fan count × inlet temperature:\n")
	fmt.Printf("%10s", "fans\\inlet")
	for _, a := range ambients {
		fmt.Printf("%8.0f°C", a)
	}
	fmt.Println()
	for _, f := range fans {
		fmt.Printf("%10d", f)
		for _, a := range ambients {
			scenario := study
			scenario.FanCount = f
			scenario.AmbientC = a
			t, err := model.PredictCase(scenario, 1800)
			if err != nil {
				return err
			}
			fmt.Printf("%10.1f", t)
		}
		fmt.Println()
	}

	// Validate two extreme cells against full simulation.
	fmt.Println("\nvalidating extremes against full simulation:")
	for _, cell := range []struct {
		fans    int
		ambient float64
	}{{6, 18}, {1, 30}} {
		scenario := study
		scenario.FanCount = cell.fans
		scenario.AmbientC = cell.ambient
		predicted, err := model.PredictCase(scenario, 1800)
		if err != nil {
			return err
		}
		rig, err := vmtherm.NewRig(scenario, vmtherm.RigOptions{Seed: seed})
		if err != nil {
			return err
		}
		res, err := rig.Run(vmtherm.DefaultRunConfig())
		if err != nil {
			return err
		}
		measured, err := res.StableTemp(vmtherm.TBreakSeconds)
		if err != nil {
			return err
		}
		fmt.Printf("  %d fans @ %.0f°C inlet: predicted %.2f, simulated %.2f (|err| %.2f)\n",
			cell.fans, cell.ambient, predicted, measured, math.Abs(predicted-measured))
	}
	return nil
}
