// Replay: record a live fleet run as a telemetry trace, then drive the
// same closed control loop from the recording — no simulator attached.
// This is the trace-replay workload class: a captured experiment (or a
// production incident) becomes a deterministic, re-runnable input to the
// exact engine that ran it live, ThermoSim-style.
//
// The demo records a 2-rack × 4-host fleet with one overloaded machine,
// writes the trace as CSV, replays it through a source-driven controller,
// and shows the replayed loop flagging the same hotspot — twice, to prove
// the replay is deterministic.
//
// Run with: go run ./examples/replay
package main

import (
	"bytes"
	"fmt"
	"log"

	"vmtherm"
)

const (
	thresholdC = 70.0
	seed       = 7
	rounds     = 12
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Live run: a simulated fleet with one overloaded host. Each round's
	// snapshot carries the newest reading per host; collecting them across
	// rounds reconstructs the telemetry stream as a trace.
	cfg := vmtherm.DefaultFleetConfig()
	cfg.Racks, cfg.HostsPerRack = 2, 4
	cfg.ThresholdC = thresholdC
	cfg.Seed = seed
	live, err := vmtherm.NewFleet(cfg, vmtherm.FleetSyntheticPredictor(75))
	if err != nil {
		return err
	}
	for v := 0; v < 6; v++ {
		spec := vmtherm.FleetHeavyVMSpec(fmt.Sprintf("hot-%02d", v), 4, 8)
		if err := live.PlaceAt("r0-h0", spec); err != nil {
			return err
		}
	}
	var readings []vmtherm.FleetReading
	for r := 0; r < rounds; r++ {
		if _, err := live.RunRound(); err != nil {
			return err
		}
		snap := live.Hotspots()
		for _, id := range live.Hosts() {
			if rd, ok := snap.Latest[id]; ok {
				readings = append(readings, rd)
			}
		}
	}
	fmt.Printf("recorded %d readings over %d live rounds\n", len(readings), rounds)

	// 2. Serialize + reload through the trace CSV format (what
	// `vmtherm-fleetd -source trace -trace run.csv` consumes).
	var buf bytes.Buffer
	if err := vmtherm.WriteTrace(&buf, readings); err != nil {
		return err
	}
	fmt.Printf("trace CSV: %d bytes\n", buf.Len())
	trace, err := vmtherm.ReadTrace(&buf)
	if err != nil {
		return err
	}

	// 3. Replay twice; the loop must behave identically both times.
	replay := func() (flaggedRound int, maxPred float64, err error) {
		src, err := vmtherm.NewTraceSource(trace, vmtherm.TraceOptions{})
		if err != nil {
			return 0, 0, err
		}
		rcfg := vmtherm.DefaultFleetConfig()
		rcfg.ThresholdC = thresholdC
		ctl, err := vmtherm.NewFleetWithSource(rcfg, src, vmtherm.FleetSyntheticPredictor(75))
		if err != nil {
			return 0, 0, err
		}
		for r := 1; r <= rounds; r++ {
			rep, err := ctl.RunRound()
			if err != nil {
				return 0, 0, err
			}
			if rep.MaxPredictedC > maxPred {
				maxPred = rep.MaxPredictedC
			}
			if flaggedRound == 0 && rep.Hotspots > 0 {
				flaggedRound = r
			}
		}
		return flaggedRound, maxPred, nil
	}
	f1, m1, err := replay()
	if err != nil {
		return err
	}
	f2, m2, err := replay()
	if err != nil {
		return err
	}
	fmt.Printf("replay 1: hotspot flagged at round %d, max predicted %.2f°C\n", f1, m1)
	fmt.Printf("replay 2: hotspot flagged at round %d, max predicted %.2f°C\n", f2, m2)
	if f1 != f2 || m1 != m2 {
		return fmt.Errorf("replays diverged: determinism broken")
	}
	if f1 == 0 {
		return fmt.Errorf("replayed loop never flagged the overloaded host")
	}
	fmt.Println("replays identical: recorded telemetry drives the same proactive loop, deterministically")
	return nil
}
