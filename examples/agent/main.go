// Agent: the full online deployment loop in one process — a monitoring
// agent samples a (simulated) server, streams measurements to the
// vmtherm-predictd HTTP service through the typed client, reads Δ_gap-ahead
// predictions back, and watches residuals with a drift detector. Halfway
// through, two fans fail: the detector flags the regime change and the
// agent re-anchors its prediction session using the model's forecast for
// the degraded cooling configuration.
//
// Run with: go run ./examples/agent
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"vmtherm"
	"vmtherm/internal/core"
	"vmtherm/internal/dataset"
	"vmtherm/internal/predictclient"
	"vmtherm/internal/predictserver"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	const seed = 37

	// Train a model whose corpus covers both healthy and degraded cooling.
	gen := vmtherm.DefaultGenOptions()
	gen.FanChoices = []int{1, 2, 4, 6}
	trainCases, err := vmtherm.GenerateCases(gen, seed, "train", 80)
	if err != nil {
		return err
	}
	fmt.Println("training stable model on 80 simulated experiments...")
	records, err := vmtherm.BuildDataset(ctx, trainCases, vmtherm.DefaultBuildOptions(seed))
	if err != nil {
		return err
	}
	model, err := vmtherm.TrainStable(ctx, records, vmtherm.FastStableConfig())
	if err != nil {
		return err
	}

	// Serve it over HTTP on an ephemeral port, as vmtherm-predictd would.
	srv, err := predictserver.New(model)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	defer func() {
		_ = httpSrv.Close()
		<-serveErr
	}()
	client, err := predictclient.New("http://" + ln.Addr().String())
	if err != nil {
		return err
	}
	if err := client.Healthy(ctx); err != nil {
		return err
	}
	fmt.Printf("predictd serving on %s\n\n", ln.Addr())

	// The monitored server: 6 VMs, 4 fans.
	caseGen := vmtherm.DefaultGenOptions()
	caseGen.VMCountMin, caseGen.VMCountMax = 6, 6
	caseGen.FanChoices = []int{4}
	study, err := vmtherm.GenerateCase(caseGen, seed, "monitored")
	if err != nil {
		return err
	}
	rig, err := vmtherm.NewRig(study, vmtherm.RigOptions{Seed: seed})
	if err != nil {
		return err
	}
	// Two fans fail at t=900 s.
	if err := rig.ScheduleFanFailures(900, 2); err != nil {
		return err
	}

	// Open the dynamic session anchored at the healthy-configuration
	// forecast.
	features, err := dataset.Encode(study, 1800)
	if err != nil {
		return err
	}
	session, err := client.OpenSession(ctx, predictserver.SessionRequest{
		Phi0:     study.AmbientC,
		Features: features,
	})
	if err != nil {
		return err
	}
	fmt.Printf("session %s anchored at predicted ψ_stable = %.2f °C (4 fans)\n",
		session.ID(), session.StableTempC)

	// The drift detector watches the ANCHOR residual (stable forecast vs.
	// settled measurement), not the calibrated dynamic predictions —
	// calibration absorbs regime changes silently, which is exactly why a
	// separate validity check on the model's forecast is needed.
	drift, err := core.NewDriftDetector(4, 9.0) // alert when the forecast is ~3 °C off
	if err != nil {
		return err
	}

	// Agent loop: 60-virtual-second epochs. After (re-)anchoring, judge the
	// anchor only once the thermals have had time to settle toward it.
	const epochS = 60.0
	reanchored := false
	judgeAfter := vmtherm.TBreakSeconds
	fmt.Printf("\n%8s %10s %12s %10s %7s\n", "t(s)", "measured", "pred(t+60)", "winMSE", "drift")
	for epoch := 1; epoch <= 30; epoch++ {
		if _, err := rig.Run(vmtherm.RunConfig{DurationS: epochS, TickS: 1, SampleS: 5}); err != nil {
			return err
		}
		now := rig.Engine().Now()
		measured := rig.Server().DieTemp()

		if _, err := session.Observe(ctx, now, measured); err != nil {
			return err
		}
		predicted, err := session.Predict(ctx, now)
		if err != nil {
			return err
		}
		// Past the settling point the anchor should match reality; feed the
		// residual to the drift detector.
		if now >= judgeAfter {
			drift.Observe(session.StableTempC, measured)
		}

		mark := ""
		if drift.Drifted() {
			mark = "DRIFT"
		}
		if epoch%3 == 0 || mark != "" {
			fmt.Printf("%8.0f %10.2f %12.2f %10.3f %7s\n",
				now, measured, predicted, drift.WindowMSE(), mark)
		}

		// On drift: re-anchor with the degraded-cooling forecast (the VMM
		// knows two fans are gone; the model predicts the new regime).
		if drift.Drifted() && !reanchored {
			degraded := study
			degraded.FanCount = 2
			degFeatures, err := dataset.Encode(degraded, 1800)
			if err != nil {
				return err
			}
			if err := session.Close(ctx); err != nil {
				return err
			}
			session, err = client.OpenSession(ctx, predictserver.SessionRequest{
				Phi0:     measured,
				Features: degFeatures,
			})
			if err != nil {
				return err
			}
			drift.Reset()
			reanchored = true
			judgeAfter = now + vmtherm.TBreakSeconds/2
			fmt.Printf("%8.0f re-anchored: new session %s, ψ_stable(2 fans) = %.2f °C\n",
				now, session.ID(), session.StableTempC)
		}
	}
	if !reanchored {
		return fmt.Errorf("drift never fired; expected the fan failure to invalidate the anchor")
	}
	fmt.Println("\nagent loop complete: drift detected, session re-anchored to the degraded regime")
	return nil
}
