// Cooling: close the loop the paper's abstract promises — "temperature
// prediction can enhance datacenter thermal management towards minimizing
// cooling power draw." A trained model predicts every server's stable
// temperature; the headroom under the thermal ceiling lets the CRAC supply
// setpoint rise, and warmer supply air cools far more efficiently (higher
// COP). Without prediction the operator must keep a conservative setpoint.
//
// Run with: go run ./examples/cooling
package main

import (
	"context"
	"fmt"
	"log"

	"vmtherm"
	"vmtherm/internal/energy"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	const seed = 29
	const refSupply = 16.0 // conservative baseline setpoint, °C

	// Train the predictor.
	gen := vmtherm.DefaultGenOptions()
	gen.AmbientMinC, gen.AmbientMaxC = 14, 30
	trainCases, err := vmtherm.GenerateCases(gen, seed, "train", 80)
	if err != nil {
		return err
	}
	fmt.Println("training stable model on 80 simulated experiments...")
	records, err := vmtherm.BuildDataset(ctx, trainCases, vmtherm.DefaultBuildOptions(seed))
	if err != nil {
		return err
	}
	model, err := vmtherm.TrainStable(ctx, records, vmtherm.FastStableConfig())
	if err != nil {
		return err
	}

	// A small fleet of 6 servers with moderate, heterogeneous load.
	fleetGen := vmtherm.DefaultGenOptions()
	fleetGen.VMCountMin, fleetGen.VMCountMax = 4, 9
	fleetGen.FanChoices = []int{4}
	fleetGen.AmbientMinC, fleetGen.AmbientMaxC = refSupply+2, refSupply+2

	preds := map[string]float64{}
	heats := map[string]float64{}
	fmt.Printf("\n%-10s %5s %10s %10s\n", "server", "VMs", "pred°C", "heat W")
	for i := 0; i < 6; i++ {
		c, err := vmtherm.GenerateCase(fleetGen, seed+int64(i), fmt.Sprintf("srv%d", i))
		if err != nil {
			return err
		}
		pred, err := model.PredictCase(c, 1800)
		if err != nil {
			return err
		}
		// Heat from the affine power model at the deployment's utilization.
		var demand float64
		for _, vm := range c.VMs {
			for _, ts := range vm.Tasks {
				demand += ts.Task.CPUFraction
			}
		}
		util := demand / 16 // reference host cores
		heat, err := energy.HostHeat(55, 165, util)
		if err != nil {
			return err
		}
		id := fmt.Sprintf("srv%d", i)
		preds[id] = pred
		heats[id] = heat
		fmt.Printf("%-10s %5d %10.2f %10.1f\n", id, len(c.VMs), pred, heat)
	}

	// Optimize the setpoint against the predictions.
	cfg := energy.DefaultSetpointConfig()
	optimized, err := energy.OptimizeSetpoint(preds, refSupply+2, cfg)
	if err != nil {
		return err
	}
	totalHeat, _ := energy.SumHeat(heats)
	report, err := energy.Compare(totalHeat, refSupply, optimized)
	if err != nil {
		return err
	}

	fmt.Printf("\nthermal ceiling: %.0f °C; hottest predicted server determines headroom\n", cfg.MaxSafeTempC)
	fmt.Printf("CRAC supply:  %.1f °C (baseline) → %.1f °C (prediction-driven)\n",
		report.BaselineSupplyC, report.OptimizedSupplyC)
	fmt.Printf("COP:          %.2f → %.2f\n", energy.COP(report.BaselineSupplyC), energy.COP(report.OptimizedSupplyC))
	fmt.Printf("cooling draw: %.0f W → %.0f W for %.0f W of server heat\n",
		report.BaselinePowerW, report.OptimizedPowerW, report.HeatW)
	fmt.Printf("savings:      %.1f%% of cooling power\n", report.SavingsFrac()*100)
	return nil
}
