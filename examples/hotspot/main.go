// Hotspot: thermal-aware VM placement at datacenter scale — the paper's
// motivating use case ("minimizing temperature distribution disparity ...
// to reduce the probability of hotspot occurrence"). Thirty VMs are placed
// into 3 racks × 4 hosts by three policies; per-host stable temperatures
// are then predicted and hotspots counted.
//
// Run with: go run ./examples/hotspot
package main

import (
	"context"
	"fmt"
	"log"

	"vmtherm"
)

const (
	racks        = 3
	hostsPerRack = 4
	vmCount      = 30
	fanCount     = 4
	hotThreshold = 65.0 // °C
	horizonS     = 1800.0
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	const seed = 11

	// Train the temperature model once.
	trainCases, err := vmtherm.GenerateCases(vmtherm.DefaultGenOptions(), seed, "train", 60)
	if err != nil {
		return err
	}
	fmt.Println("training stable model on 60 simulated experiments...")
	records, err := vmtherm.BuildDataset(ctx, trainCases, vmtherm.DefaultBuildOptions(seed))
	if err != nil {
		return err
	}
	model, err := vmtherm.TrainStable(ctx, records, vmtherm.FastStableConfig())
	if err != nil {
		return err
	}

	// The VM arrival sequence is identical for every policy.
	arrivals, err := arrivalSequence(seed)
	if err != nil {
		return err
	}

	policies := []vmtherm.Placer{
		vmtherm.FirstFit{},
		vmtherm.CoolestInlet{},
		vmtherm.PredictedTemp{
			FanCount: fanCount,
			Predict:  vmtherm.PlacementPredictor(model, horizonS),
		},
	}

	fmt.Printf("\nplacing %d VMs into %d racks × %d hosts, hotspot threshold %.0f °C\n\n",
		vmCount, racks, hostsPerRack, hotThreshold)
	fmt.Printf("%-16s %9s %10s %10s %9s\n", "policy", "hotspots", "max°C", "mean°C", "rejected")

	for _, p := range policies {
		hotspots, maxT, meanT, rejected, err := evaluatePolicy(p, arrivals, model)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %9d %10.2f %10.2f %9d\n", p.Name(), hotspots, maxT, meanT, rejected)
	}
	fmt.Println("\nprediction-driven placement spreads heat: fewer hotspots and a lower peak.")
	return nil
}

// arrivalSequence builds a deterministic stream of VM requests.
func arrivalSequence(seed int64) ([]vmtherm.VMSpec, error) {
	opts := vmtherm.DefaultGenOptions()
	opts.VMCountMin, opts.VMCountMax = vmCount, vmCount
	// One giant case is just a convenient generator for VM specs.
	opts.Host.Cores = 1024
	opts.Host.MemoryGB = 8192
	c, err := vmtherm.GenerateCase(opts, seed, "arrivals")
	if err != nil {
		return nil, err
	}
	return c.VMs, nil
}

// evaluatePolicy runs the placement sequence under one policy and scores
// the resulting thermal layout with the trained model.
func evaluatePolicy(p vmtherm.Placer, arrivals []vmtherm.VMSpec, model *vmtherm.StablePredictor) (hotspots int, maxT, meanT float64, rejected int, err error) {
	dc, err := buildDatacenter(p.Name())
	if err != nil {
		return 0, 0, 0, 0, err
	}
	for _, spec := range arrivals {
		host, err := p.Choose(dc, spec)
		if err != nil {
			rejected++
			continue
		}
		vm, err := vmtherm.NewVM(spec.ID+"@"+p.Name(), spec.Config)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		for _, ts := range spec.Tasks {
			if err := vm.AddTask(ts.Task); err != nil {
				return 0, 0, 0, 0, err
			}
		}
		if err := host.Place(vm); err != nil {
			return 0, 0, 0, 0, err
		}
		if err := vm.Start(0); err != nil {
			return 0, 0, 0, 0, err
		}
	}

	// Predict per-host stable temperatures for the final layout.
	temps := map[string]float64{}
	var sum float64
	var n int
	for _, pos := range dc.AllHosts() {
		host := pos.Rack.Hosts()[pos.Slot]
		if host.NumVMs() == 0 {
			continue
		}
		inlet, err := dc.InletTemp(pos.Rack, pos.Slot)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		state, err := vmtherm.HostStateCase(host, fanCount, inlet, nil)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		t, err := model.PredictCase(state, horizonS)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		temps[host.ID()] = t
		sum += t
		n++
		if t > maxT {
			maxT = t
		}
	}
	if n > 0 {
		meanT = sum / float64(n)
	}
	return len(vmtherm.DetectHotspots(temps, hotThreshold)), maxT, meanT, rejected, nil
}

// buildDatacenter assembles 3 racks × 4 hosts with top-of-rack slots warmer.
func buildDatacenter(tag string) (*vmtherm.Datacenter, error) {
	var rs []*vmtherm.Rack
	for r := 0; r < racks; r++ {
		hosts := make([]*vmtherm.Host, hostsPerRack)
		offsets := make([]float64, hostsPerRack)
		for s := 0; s < hostsPerRack; s++ {
			h, err := vmtherm.NewHost(fmt.Sprintf("%s-r%d-h%d", tag, r, s), vmtherm.DefaultHostConfig())
			if err != nil {
				return nil, err
			}
			hosts[s] = h
			offsets[s] = float64(s) * 1.5
		}
		rack, err := vmtherm.NewRack(fmt.Sprintf("%s-r%d", tag, r), hosts, offsets)
		if err != nil {
			return nil, err
		}
		rs = append(rs, rack)
	}
	return vmtherm.NewDatacenter(vmtherm.DefaultCRAC(), rs)
}
