// Quickstart: train a stable-temperature model on simulated experiments and
// predict ψ_stable for a held-out case — the paper's Eq. (1)–(2) pipeline in
// ~50 lines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"vmtherm"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// 1. Generate randomized experiment cases: 2–12 VMs per host, mixed
	//    task classes, 2–6 fans, 18–28 °C ambient.
	cases, err := vmtherm.GenerateCases(vmtherm.DefaultGenOptions(), 42, "quick", 60)
	if err != nil {
		return err
	}

	// 2. Run each case on the simulated testbed for 1800 s and extract one
	//    Eq. (2) record per case (input features → measured ψ_stable).
	fmt.Println("simulating 60 experiments (1800 s each, in virtual time)...")
	records, err := vmtherm.BuildDataset(ctx, cases, vmtherm.DefaultBuildOptions(42))
	if err != nil {
		return err
	}

	// 3. Hold out a few cases, train the SVM pipeline with grid search.
	train, test, err := vmtherm.SplitDataset(records, 0.1, 42)
	if err != nil {
		return err
	}
	fmt.Printf("training on %d records (grid search + cross-validation)...\n", len(train))
	model, err := vmtherm.TrainStable(ctx, train, vmtherm.FastStableConfig())
	if err != nil {
		return err
	}
	fmt.Printf("best hyper-parameters: C=%g gamma=%g eps=%g (cv MSE %.3f)\n\n",
		model.Best().C, model.Best().Gamma, model.Best().Epsilon, model.CVMSE())

	// 4. Predict stable CPU temperature for the held-out cases.
	fmt.Printf("%-12s %10s %10s %8s\n", "case", "actual°C", "pred°C", "err")
	var sumSq float64
	for _, rec := range test {
		pred, err := model.PredictFeatures(rec.Features)
		if err != nil {
			return err
		}
		diff := pred - rec.StableTemp
		sumSq += diff * diff
		fmt.Printf("%-12s %10.2f %10.2f %+8.2f\n", rec.CaseName, rec.StableTemp, pred, diff)
	}
	fmt.Printf("\nheld-out MSE: %.3f (paper reports ≤ 1.10)\n", sumSq/float64(len(test)))
	return nil
}
