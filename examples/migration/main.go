// Migration: dynamic temperature prediction through a live VM migration —
// the scenario the paper says traditional task-temperature and RC models
// cannot handle. A hot VM migrates onto the observed server mid-run; the
// calibrated predictor (Eqs. 3–8) tracks the resulting thermal shift while
// the uncalibrated curve drifts.
//
// Run with: go run ./examples/migration
package main

import (
	"context"
	"fmt"
	"log"

	"vmtherm"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	const seed = 7

	// Train the stable model (the ψ_stable anchor source).
	trainCases, err := vmtherm.GenerateCases(vmtherm.DefaultGenOptions(), seed, "train", 60)
	if err != nil {
		return err
	}
	fmt.Println("training stable model on 60 simulated experiments...")
	records, err := vmtherm.BuildDataset(ctx, trainCases, vmtherm.DefaultBuildOptions(seed))
	if err != nil {
		return err
	}
	model, err := vmtherm.TrainStable(ctx, records, vmtherm.FastStableConfig())
	if err != nil {
		return err
	}

	// The observed server: 5 VMs, 4 fans.
	opts := vmtherm.DefaultGenOptions()
	opts.VMCountMin, opts.VMCountMax = 5, 5
	opts.FanChoices = []int{4}
	study, err := vmtherm.GenerateCase(opts, seed, "observed")
	if err != nil {
		return err
	}
	rig, err := vmtherm.NewRig(study, vmtherm.RigOptions{Seed: seed})
	if err != nil {
		return err
	}

	// At t=900 s a CPU-heavy VM live-migrates in from another host.
	newcomer := vmtherm.VMSpec{
		ID:     "hot-vm",
		Config: vmtherm.VMConfig{VCPUs: 4, MemoryGB: 8},
		Tasks: []vmtherm.TaskSpec{
			{Task: vmtherm.Task{ID: "hot-vm-t0", Class: vmtherm.CPUBound, CPUFraction: 0.95, MemGB: 2}},
			{Task: vmtherm.Task{ID: "hot-vm-t1", Class: vmtherm.CPUBound, CPUFraction: 0.9, MemGB: 1}},
		},
	}
	plan, err := vmtherm.PlanMigration(newcomer.Config.MemoryGB, vmtherm.DefaultMigrationSpec())
	if err != nil {
		return err
	}
	fmt.Printf("migration plan: %d pre-copy rounds, %.1f s total, %.0f ms downtime\n",
		plan.Rounds, plan.TotalSeconds(), plan.DowntimeSeconds*1000)
	if err := rig.ScheduleMigrationIn(900, newcomer, vmtherm.DefaultMigrationSpec()); err != nil {
		return err
	}

	// Run 1800 s: the VM arrives mid-experiment.
	runCfg := vmtherm.DefaultRunConfig()
	res, err := rig.Run(runCfg)
	if err != nil {
		return err
	}

	// Anchor the pre-defined curve: φ(0) measured, ψ_stable predicted for
	// the POST-migration deployment (the VMM knows what is scheduled).
	phi0, _, err := vmtherm.ProfileTrace(res.SensorTemps, vmtherm.TBreakSeconds)
	if err != nil {
		return err
	}
	postCase := study
	postCase.VMs = append(append([]vmtherm.VMSpec{}, study.VMs...), newcomer)
	predictedStable, err := model.PredictCase(postCase, runCfg.DurationS)
	if err != nil {
		return err
	}
	actualStable, err := res.SensorTemps.MeanAfter(1200) // post-migration regime
	if err != nil {
		return err
	}
	fmt.Printf("post-migration stable: predicted %.2f °C, measured %.2f °C\n\n",
		predictedStable, actualStable)

	curve, err := vmtherm.NewCurve(phi0, predictedStable, vmtherm.TBreakSeconds, vmtherm.DefaultCurveDelta)
	if err != nil {
		return err
	}
	calibrated, err := vmtherm.Replay(res.SensorTemps, curve, vmtherm.DefaultDynamicConfig())
	if err != nil {
		return err
	}
	noCal := vmtherm.DefaultDynamicConfig()
	noCal.Lambda = 0
	uncalibrated, err := vmtherm.Replay(res.SensorTemps, curve, noCal)
	if err != nil {
		return err
	}

	fmt.Printf("dynamic prediction through the migration (Δgap=60 s, Δupdate=15 s):\n")
	fmt.Printf("  with calibration (λ=0.8): MSE %.3f\n", calibrated.MSE)
	fmt.Printf("  without calibration:      MSE %.3f\n", uncalibrated.MSE)

	fmt.Printf("\n%8s %10s %12s %12s\n", "t(s)", "measured", "calibrated", "uncalibrated")
	for i := 0; i < len(calibrated.Points); i += len(calibrated.Points) / 15 {
		p := calibrated.Points[i]
		fmt.Printf("%8.0f %10.2f %12.2f %12.2f\n",
			p.Target, p.Actual, p.Predicted, uncalibrated.Points[i].Predicted)
	}
	return nil
}
