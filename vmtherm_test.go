package vmtherm_test

import (
	"context"
	"strings"
	"testing"

	"vmtherm"
)

// TestEndToEndPublicAPI walks the full facade: generate cases, simulate,
// train, predict stable, run a rig, and replay dynamic prediction — the
// exact flow the README documents.
func TestEndToEndPublicAPI(t *testing.T) {
	ctx := context.Background()

	cases, err := vmtherm.GenerateCases(vmtherm.DefaultGenOptions(), 1, "e2e", 40)
	if err != nil {
		t.Fatal(err)
	}
	records, err := vmtherm.BuildDataset(ctx, cases, vmtherm.DefaultBuildOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := vmtherm.SplitDataset(records, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	model, err := vmtherm.TrainStable(ctx, train, vmtherm.FastStableConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Stable prediction on held-out records.
	var worst float64
	for _, rec := range test {
		p, err := model.PredictFeatures(rec.Features)
		if err != nil {
			t.Fatal(err)
		}
		if d := p - rec.StableTemp; d*d > worst {
			worst = d * d
		}
	}
	if worst > 25 {
		t.Errorf("worst-case squared error %v implausible for a trained model", worst)
	}

	// Save/Load round trip through the facade alias.
	var sb strings.Builder
	if err := model.Save(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := vmtherm.LoadStable(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	a, err := model.PredictFeatures(test[0].Features)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.PredictFeatures(test[0].Features)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("loaded model predicts differently")
	}

	// Dynamic prediction on a fresh rig.
	rig, err := vmtherm.NewRig(cases[0], vmtherm.RigOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	run, err := rig.Run(vmtherm.DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	phi0, _, err := vmtherm.ProfileTrace(run.SensorTemps, vmtherm.TBreakSeconds)
	if err != nil {
		t.Fatal(err)
	}
	stable, err := model.PredictCase(cases[0], 1800)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := vmtherm.NewCurve(phi0, stable, vmtherm.TBreakSeconds, vmtherm.DefaultCurveDelta)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := vmtherm.Replay(run.SensorTemps, curve, vmtherm.DefaultDynamicConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rr.MSE <= 0 || rr.MSE > 10 {
		t.Errorf("dynamic replay MSE = %v outside plausible band", rr.MSE)
	}

	// Online predictor matches the replay mechanics.
	pred, err := vmtherm.NewDynamicPredictor(curve, vmtherm.DefaultDynamicConfig())
	if err != nil {
		t.Fatal(err)
	}
	first, err := run.SensorTemps.First()
	if err != nil {
		t.Fatal(err)
	}
	pred.Observe(first.T, first.V)
	if p := pred.Predict(first.T); p < 0 || p > 120 {
		t.Errorf("online prediction %v implausible", p)
	}
}
